open Netgraph
open Te

(* ------------------------------------------------------------------ *)
(* Scenario grammar                                                    *)
(* ------------------------------------------------------------------ *)

type shift =
  | No_shift
  | Uniform of float
  | Jitter of { seed : int; sigma : float }
  | Hotspot of { seed : int; pairs : int; factor : float }
  | Diurnal of { level : float }

type spec = { id : int; failed : int list; shift : shift }

type config = {
  seed : int;
  fail_pairs : bool;
  include_baseline : bool;
  single_failures : bool;
  dual_failures : int;
  srlgs : int list list;
  scales : float list;
  jitters : int;
  jitter_sigma : float;
  hotspots : int;
  hotspot_pairs : int;
  hotspot_factor : float;
  diurnal : int;
  cross : bool;
}

let default_config =
  {
    seed = 1;
    fail_pairs = true;
    include_baseline = true;
    single_failures = true;
    dual_failures = 0;
    srlgs = [];
    scales = [];
    jitters = 0;
    jitter_sigma = 0.25;
    hotspots = 0;
    hotspot_pairs = 3;
    hotspot_factor = 3.;
    diurnal = 0;
    cross = false;
  }

let validate cfg =
  List.iter
    (fun s ->
      if not (s > 0.) then invalid_arg "Scenario.generate: scale must be > 0")
    cfg.scales;
  if cfg.jitter_sigma < 0. then
    invalid_arg "Scenario.generate: negative jitter sigma";
  if not (cfg.hotspot_factor > 0.) then
    invalid_arg "Scenario.generate: hotspot factor must be > 0";
  if cfg.hotspots > 0 && cfg.hotspot_pairs < 1 then
    invalid_arg "Scenario.generate: hotspot_pairs must be >= 1";
  if cfg.dual_failures < 0 || cfg.jitters < 0 || cfg.hotspots < 0
     || cfg.diurnal < 0
  then invalid_arg "Scenario.generate: negative scenario count"

(* Sampled unordered pairs of single-failure cases.  The RNG derives
   from the config seed only, so the sample is one fixed set no matter
   where generation runs. *)
let sample_duals cfg singles =
  if cfg.dual_failures = 0 then []
  else begin
    let arr = Array.of_list singles in
    let n = Array.length arr in
    let total = n * (n - 1) / 2 in
    if total = 0 then []
    else if cfg.dual_failures >= total then begin
      let out = ref [] in
      for i = n - 1 downto 0 do
        for j = n - 1 downto i + 1 do
          out := (arr.(i) @ arr.(j)) :: !out
        done
      done;
      !out
    end
    else begin
      let st = Random.State.make [| 0x2fa1; cfg.seed |] in
      let seen = Hashtbl.create cfg.dual_failures in
      let out = ref [] in
      while Hashtbl.length seen < cfg.dual_failures do
        let i = Random.State.int st n and j = Random.State.int st n in
        if i <> j then begin
          let key = (min i j, max i j) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            out := (arr.(fst key) @ arr.(snd key)) :: !out
          end
        end
      done;
      List.rev !out
    end
  end

let generate cfg g =
  validate cfg;
  let m = Digraph.edge_count g in
  List.iter
    (List.iter (fun e ->
         if e < 0 || e >= m then
           invalid_arg "Scenario.generate: SRLG edge outside the graph"))
    cfg.srlgs;
  let singles =
    if cfg.single_failures then
      List.map snd (Failures.failure_groups ~fail_pairs:cfg.fail_pairs g)
    else []
  in
  let fail_cases = singles @ cfg.srlgs @ sample_duals cfg singles in
  let shifts =
    List.map (fun f -> Uniform f) cfg.scales
    @ List.init cfg.jitters (fun j ->
          Jitter { seed = (cfg.seed * 8191) + j; sigma = cfg.jitter_sigma })
    @ List.init cfg.hotspots (fun j ->
          Hotspot
            {
              seed = (cfg.seed * 524287) + j;
              pairs = cfg.hotspot_pairs;
              factor = cfg.hotspot_factor;
            })
    @ List.init cfg.diurnal (fun j ->
          Diurnal { level = float_of_int j /. float_of_int cfg.diurnal })
  in
  let cases =
    if cfg.cross then
      List.concat_map
        (fun f -> List.map (fun s -> (f, s)) (No_shift :: shifts))
        ([] :: fail_cases)
      |> List.filter (fun (f, s) ->
             cfg.include_baseline || f <> [] || s <> No_shift)
    else
      (if cfg.include_baseline then [ ([], No_shift) ] else [])
      @ List.map (fun f -> (f, No_shift)) fail_cases
      @ List.map (fun s -> ([], s)) shifts
  in
  Array.of_list (List.mapi (fun id (failed, shift) -> { id; failed; shift }) cases)

(* ------------------------------------------------------------------ *)
(* Demand shifts                                                       *)
(* ------------------------------------------------------------------ *)

let gaussian st =
  let u1 = 1. -. Random.State.float st 1. in
  let u2 = Random.State.float st 1. in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let apply_shift shift demands =
  match shift with
  | No_shift -> demands
  | Uniform f ->
    Array.map
      (fun (d : Network.demand) -> { d with Network.size = d.Network.size *. f })
      demands
  | Jitter { seed; sigma } ->
    let st = Random.State.make [| 0x71e2; seed |] in
    Array.map
      (fun (d : Network.demand) ->
        { d with Network.size = d.Network.size *. exp (sigma *. gaussian st) })
      demands
  | Hotspot { seed; pairs; factor } ->
    let st = Random.State.make [| 0x4075; seed |] in
    let n = Array.length demands in
    let idx = Array.init n (fun i -> i) in
    let k = min pairs n in
    for i = 0 to k - 1 do
      let j = i + Random.State.int st (n - i) in
      let t = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- t
    done;
    let hot = Hashtbl.create (max 1 k) in
    for i = 0 to k - 1 do
      Hashtbl.replace hot idx.(i) ()
    done;
    Array.mapi
      (fun i (d : Network.demand) ->
        if Hashtbl.mem hot i then
          { d with Network.size = d.Network.size *. factor }
        else d)
      demands
  | Diurnal { level } ->
    (* Each source city peaks at its own hour; the factor stays within
       [0.4, 1.2] so sizes remain positive. *)
    Array.map
      (fun (d : Network.demand) ->
        let phase = float_of_int (((23 * d.Network.src) + 7) mod 24) /. 24. in
        let x = 0.5 +. (0.5 *. sin (2. *. Float.pi *. (level +. phase))) in
        { d with Network.size = d.Network.size *. (0.4 +. (0.8 *. x)) })
      demands

(* ------------------------------------------------------------------ *)
(* Serving replays                                                      *)
(* ------------------------------------------------------------------ *)

type replay = {
  replay_seed : int;
  steps : int;
  days : float;
  flash_crowds : int;
  flash_pairs : int;
  flash_factor : float;
  flash_len : int;
  report_every : int;
  quit : bool;
}

let default_replay =
  {
    replay_seed = 1;
    steps = 100;
    days = 1.;
    flash_crowds = 2;
    flash_pairs = 3;
    flash_factor = 3.;
    flash_len = 8;
    report_every = 0;
    quit = true;
  }

let replay_events r demands =
  if r.steps <= 0 then invalid_arg "Scenario.replay_events: steps must be positive";
  if r.flash_crowds < 0 || r.flash_pairs < 0 || r.flash_len < 0 then
    invalid_arg "Scenario.replay_events: negative flash-crowd parameter";
  if not (r.flash_factor > 0.) then
    invalid_arg "Scenario.replay_events: flash factor must be positive";
  let base = Network.aggregate demands in
  (* Each flash crowd is a seeded hotspot burst over a contiguous step
     window; the window start and the pair pick both derive from the
     replay seed, so the trace is a pure function of the spec. *)
  let crowds =
    List.init r.flash_crowds (fun c ->
        let st = Random.State.make [| 0x5e2e; r.replay_seed; c |] in
        let start = Random.State.int st (max 1 (r.steps - r.flash_len + 1)) in
        let hs =
          Hotspot
            {
              seed = (r.replay_seed * 131071) + c;
              pairs = r.flash_pairs;
              factor = r.flash_factor;
            }
        in
        (start, hs))
  in
  let prev = Array.map (fun (d : Network.demand) -> d.Network.size) base in
  let buf = Buffer.create 4096 in
  let lines = ref [] in
  for t = 0 to r.steps - 1 do
    let level =
      let x = r.days *. float_of_int (t + 1) /. float_of_int r.steps in
      x -. Float.of_int (int_of_float x)
    in
    let matrix = apply_shift (Diurnal { level }) base in
    let matrix =
      List.fold_left
        (fun m (start, hs) ->
          if t >= start && t < start + r.flash_len then apply_shift hs m
          else m)
        matrix crowds
    in
    Buffer.clear buf;
    let changes = ref 0 in
    Array.iteri
      (fun i (d : Network.demand) ->
        let s = d.Network.size in
        if abs_float (s -. prev.(i)) > 1e-12 *. (1. +. abs_float prev.(i))
        then begin
          if !changes > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "{\"src\":%d,\"dst\":%d,\"size\":%.17g}"
               d.Network.src d.Network.dst s);
          incr changes;
          prev.(i) <- s
        end)
      matrix;
    if !changes > 0 then
      lines :=
        Printf.sprintf "{\"ev\":\"delta\",\"changes\":[%s]}"
          (Buffer.contents buf)
        :: !lines;
    if r.report_every > 0 && (t + 1) mod r.report_every = 0 then
      lines := "{\"ev\":\"report\"}" :: !lines
  done;
  if r.quit then lines := "{\"ev\":\"quit\"}" :: !lines;
  List.rev !lines

let shift_label = function
  | No_shift -> "nominal"
  | Uniform f -> Printf.sprintf "scale=%.2f" f
  | Jitter { seed; sigma } -> Printf.sprintf "jitter#%d s=%.2f" seed sigma
  | Hotspot { seed; pairs; factor } ->
    Printf.sprintf "hotspot#%d %dx%.1f" seed pairs factor
  | Diurnal { level } -> Printf.sprintf "diurnal t=%.2f" level

let spec_label g s =
  let fail =
    match s.failed with
    | [] -> "ok"
    | es ->
      "fail:"
      ^ String.concat "+"
          (List.map
             (fun e ->
               Printf.sprintf "%s>%s"
                 (Digraph.node_name g (Digraph.src g e))
                 (Digraph.node_name g (Digraph.dst g e)))
             es)
  in
  fail ^ " " ^ shift_label s.shift

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

type policy = Static | Repair | Reweight of int

let policy_name = function
  | Static -> "static"
  | Repair -> "repair"
  | Reweight k -> Printf.sprintf "reweight:%d" k

let policy_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "static" -> Static
  | "repair" -> Repair
  | _ when String.length s > 9 && String.sub s 0 9 = "reweight:" -> (
    match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
    | Some k when k >= 0 -> Reweight k
    | _ ->
      invalid_arg ("Scenario.policies_of_string: bad reweight budget in " ^ s))
  | _ -> invalid_arg ("Scenario.policies_of_string: unknown policy " ^ s)

let policies_of_string s =
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map policy_of_string

type deployed = { weights : int array; waypoints : Segments.setting }

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

type policy_outcome = {
  policy : policy;
  disconnected : int;
  mlu : float;
  weight_changes : int;
  waypoint_changes : int;
}

type outcome = {
  spec : spec;
  static_disconnected : int;
  topo_disconnected : int;
  static_mlu : float;
  policies : policy_outcome list;
}

let commodities_for demands segs =
  let out = ref [] in
  Array.iteri
    (fun i (d : Network.demand) ->
      List.iter (fun (a, b) -> out := (a, b, d.Network.size) :: !out) segs.(i))
    demands;
  Array.of_list (List.rev !out)

(* One policy reaction to one scenario.  Runs on fresh evaluators (the
   optimizers build their own), so the outcome is a pure function of the
   spec — independent of which worker runs it and of anything cached in
   the sweep evaluators. *)
let run_policy ~(kctx : Obs.Ctx.t) ~g ~deployed ~reopt_evals ~spec ~demands'
    ~static_disconnected ~topo_disconnected ~static_mlu policy =
  Obs.Ctx.span kctx ("scn:policy:" ^ policy_name policy) @@ fun () ->
  match policy with
  | Static ->
    {
      policy = Static;
      disconnected = static_disconnected;
      mlu = static_mlu;
      weight_changes = 0;
      waypoint_changes = 0;
    }
  | Repair ->
    if topo_disconnected > 0 then
      {
        policy = Repair;
        disconnected = topo_disconnected;
        mlu = nan;
        weight_changes = 0;
        waypoint_changes = 0;
      }
    else begin
      let wrep = Weights.of_ints deployed.weights in
      List.iter (fun e -> wrep.(e) <- infinity) spec.failed;
      let r = Greedy_wpo.optimize_ctx kctx g wrep demands' in
      if static_disconnected = 0 && static_mlu <= r.Greedy_wpo.mlu +. 1e-12 then
        (* The deployed waypoints still route everything and are at
           least as good: keep them, zero churn. *)
        {
          policy = Repair;
          disconnected = 0;
          mlu = static_mlu;
          weight_changes = 0;
          waypoint_changes = 0;
        }
      else begin
        let setting = Segments.of_single r.Greedy_wpo.waypoints in
        let changes = ref 0 in
        Array.iteri
          (fun i wps -> if wps <> deployed.waypoints.(i) then incr changes)
          setting;
        {
          policy = Repair;
          disconnected = 0;
          mlu = r.Greedy_wpo.mlu;
          weight_changes = 0;
          waypoint_changes = !changes;
        }
      end
    end
  | Reweight k ->
    if static_disconnected > 0 then
      {
        policy = Reweight k;
        disconnected = static_disconnected;
        mlu = nan;
        weight_changes = 0;
        waypoint_changes = 0;
      }
    else begin
      let r =
        Reopt.reoptimize_ctx kctx
          ~ls_params:
            {
              Local_search.default_params with
              Local_search.max_evals = reopt_evals;
              Local_search.seed = 0x5eed + spec.id;
            }
          ~max_weight_changes:k ~frozen_edges:spec.failed
          ~deployed_weights:deployed.weights
          ~deployed_waypoints:deployed.waypoints g demands'
      in
      {
        policy = Reweight k;
        disconnected = 0;
        mlu = r.Reopt.mlu;
        weight_changes = r.Reopt.churn.Reopt.weight_changes;
        waypoint_changes = r.Reopt.churn.Reopt.waypoint_changes;
      }
    end

let sweep_ctx (octx : Obs.Ctx.t) ?(chunk = 4) ?(policies = [ Static ])
    ?(reopt_evals = 400) ~deployed g demands specs =
  if Array.length deployed.weights <> Digraph.edge_count g then
    invalid_arg "Scenario.sweep: deployed weight length mismatch";
  if Array.length deployed.waypoints <> Array.length demands then
    invalid_arg "Scenario.sweep: deployed waypoint length mismatch";
  let pool = octx.Obs.Ctx.pool in
  let segs =
    Array.mapi
      (fun i d -> Segments.segment_endpoints d deployed.waypoints.(i))
      demands
  in
  let master =
    Engine.Evaluator.create ~stats:octx.Obs.Ctx.stats g
      (Weights.of_ints deployed.weights)
  in
  Engine.Evaluator.set_commodities master (commodities_for demands segs);
  (* Worker clones come from the context's persistent cache (slot 0 is
     the master itself), still materialized on the caller's domain
     before the fan-out; each worker then owns evaluator [worker]
     exclusively for the whole sweep.  A daemon re-running sweeps on the
     same topology pays an incremental sync here, not a full copy. *)
  let par = max 1 (Par.Pool.parallelism pool) in
  let evs =
    Array.init par (fun w ->
        if w = 0 then master
        else
          Engine.Evaluator.Clones.get octx.Obs.Ctx.clones ~worker:w
            ~src:master)
  in
  let cur_shift = Array.make par No_shift in
  let cur_demands = Array.make par demands in
  (* Per-worker metrics cells: the static probe of each scenario writes
     its (mlu, phi) here instead of allocating a result tuple. *)
  let cells =
    Array.init par (fun _ -> { Engine.Evaluator.mlu = 0.; phi = 0. })
  in
  (* One child context per scenario, created up front on this domain and
     grafted back in spec order: the trace and metrics are a pure
     function of the spec list, never of worker scheduling. *)
  let kids = Array.map (fun _ -> Obs.Ctx.fork octx) specs in
  let nspec = Array.length specs in
  (* The sweep is a two-stage task graph, not one flat map.  Stage A
     (one task per chunk of specs) runs the static probes — commodity
     streaming, failure injection, reachability, static MLU — on the
     worker's own clone and records the outcome in per-spec arrays.
     Stage B (one task per spec, depending only on its own chunk's
     stage-A task) runs the re-optimization policies, which build their
     own evaluators from the spec's forked context.  The scheduler
     pipelines the stages: policies of early chunks overlap the static
     probes of later chunks instead of waiting at a full-sweep barrier.
     Every per-spec cell is written by exactly one stage-A task and read
     by the one stage-B task that depends on it, so the decomposition
     stays schedule-independent. *)
  let ch = Par.Pool.chunks ~chunk nspec in
  let nch = Array.length ch in
  let static_disc = Array.make nspec 0 in
  let topo_disc = Array.make nspec 0 in
  let static_mlu_arr = Array.make nspec nan in
  let spec_demands = Array.make nspec demands in
  let case_toks = Array.make nspec (-1) in
  let out = Array.make nspec None in
  let probe_spec ~worker i =
    let spec = specs.(i) in
    let kctx = kids.(i) in
    let tracer = kctx.Obs.Ctx.tracer in
    (* The scn:case span opens here and closes at the end of the spec's
       stage-B task, so policy spans nest under it exactly as they did
       under the flat map.  The kid buffer is touched by the spec's two
       tasks only, and the dependency edge orders them. *)
    let tok = Obs.Tracer.start tracer "scn:case" in
    Obs.Tracer.attr tracer tok (Obs.Attr.int "spec" spec.id);
    case_toks.(i) <- tok;
    Obs.Metrics.incr kctx.Obs.Ctx.metrics "scn.cases";
    let ev = evs.(worker) in
    (* Attach this scenario's demand matrix — skipped when the worker's
       commodities already encode it (the whole point of chunked
       streaming: consecutive same-shift scenarios share every load
       cache).  Must happen while the undo trail is empty. *)
    if cur_shift.(worker) <> spec.shift then begin
      let demands' = apply_shift spec.shift demands in
      Engine.Evaluator.set_commodities ev (commodities_for demands' segs);
      cur_shift.(worker) <- spec.shift;
      cur_demands.(worker) <- demands'
    end;
    spec_demands.(i) <- cur_demands.(worker);
    let wstats = Engine.Evaluator.stats ev in
    Engine.Stats.record_scenario wstats;
    List.iter (fun e -> Engine.Evaluator.disable_edge ev ~edge:e) spec.failed;
    let static_disconnected = ref 0 and topo_disconnected = ref 0 in
    Array.iteri
      (fun di (d : Network.demand) ->
        if
          not
            (List.for_all
               (fun (a, b) -> Engine.Evaluator.reachable ev ~src:a ~dst:b)
               segs.(di))
        then incr static_disconnected;
        if
          not
            (Engine.Evaluator.reachable ev ~src:d.Network.src
               ~dst:d.Network.dst)
        then incr topo_disconnected)
      demands;
    static_mlu_arr.(i) <-
      (if !static_disconnected > 0 then nan
       else begin
         let c = cells.(worker) in
         Engine.Evaluator.evaluate_into ev c;
         c.Engine.Evaluator.mlu
       end);
    Engine.Evaluator.undo ev;
    static_disc.(i) <- !static_disconnected;
    topo_disc.(i) <- !topo_disconnected;
    if !static_disconnected > 0 then
      Obs.Metrics.incr kctx.Obs.Ctx.metrics "scn.disconnected"
  in
  let policy_spec i =
    let spec = specs.(i) in
    let kctx = kids.(i) in
    let static_mlu = static_mlu_arr.(i) in
    let pol =
      List.map
        (run_policy ~kctx ~g ~deployed ~reopt_evals ~spec
           ~demands':spec_demands.(i)
           ~static_disconnected:static_disc.(i)
           ~topo_disconnected:topo_disc.(i) ~static_mlu)
        policies
    in
    Obs.Tracer.finish kctx.Obs.Ctx.tracer case_toks.(i);
    out.(i) <-
      Some
        {
          spec;
          static_disconnected = static_disc.(i);
          topo_disconnected = topo_disc.(i);
          static_mlu;
          policies = pol;
        }
  in
  let deps = Array.make (nch + nspec) [] in
  Array.iteri
    (fun ci (start, len) ->
      for i = start to start + len - 1 do
        deps.(nch + i) <- [ ci ]
      done)
    ch;
  Par.Pool.run_graph pool ~tasks:(nch + nspec) ~deps (fun ~worker t ->
      if t < nch then begin
        let start, len = ch.(t) in
        for i = start to start + len - 1 do
          probe_spec ~worker i
        done
      end
      else policy_spec (t - nch));
  for w = 1 to par - 1 do
    let ws = Engine.Evaluator.stats evs.(w) in
    Engine.Stats.merge ~into:octx.Obs.Ctx.stats ws;
    Engine.Stats.reset ws
  done;
  Array.iteri (fun i kid -> Obs.Ctx.join ~key:specs.(i).id ~into:octx kid) kids;
  Array.map (function Some r -> r | None -> assert false) out

let static_sweep_rebuild ~deployed g demands specs =
  let wf = Weights.of_ints deployed.weights in
  Array.map
    (fun s ->
      let demands' = apply_shift s.shift demands in
      Failures.rebuild_outcome ~waypoints:deployed.waypoints g wf demands'
        ~removed:s.failed)
    specs

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

type summary = {
  policy : policy;
  scenarios : int;
  disconnected_scenarios : int;
  worst_mlu : float;
  worst_id : int;
  mean_mlu : float;
  p50 : float;
  p95 : float;
  p99 : float;
  cvar95 : float;
  mean_weight_changes : float;
  mean_waypoint_changes : float;
  delta_worst : float;
  delta_mean : float;
}

type report = {
  topology : string;
  nominal_mlu : float;
  scenario_count : int;
  summaries : summary list;
  worst_cases : (spec * float * int) list;
}

(* Severity key: any disconnection outranks any MLU, more disconnected
   demands outrank fewer; nan never reaches a raw float compare. *)
let sev_key d m = ((if d > 0 then 1 else 0), d, if Float.is_nan m then 0. else m)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

(* Aggregate one policy's per-scenario (disconnected, mlu, w-churn,
   wp-churn) rows, [delta] fields relative to [vs] (the static summary)
   when given. *)
let summary_of ?vs policy rows =
  let n = Array.length rows in
  let disc_scens = ref 0 and sum_w = ref 0 and sum_wp = ref 0 in
  let finite = ref [] in
  let worst = ref None in
  Array.iteri
    (fun i (d, m, wc, wpc) ->
      if d > 0 then incr disc_scens;
      sum_w := !sum_w + wc;
      sum_wp := !sum_wp + wpc;
      if (not (Float.is_nan m)) && d = 0 then finite := m :: !finite;
      let key = sev_key d m in
      match !worst with
      | Some (bk, _) when compare key bk <= 0 -> ()
      | _ -> worst := Some (key, i))
    rows;
  let sorted = Array.of_list (List.rev !finite) in
  Array.sort compare sorted;
  let fn = Array.length sorted in
  let mean a =
    if Array.length a = 0 then nan
    else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)
  in
  let cvar95 =
    if fn = 0 then nan
    else begin
      let k = max 1 (int_of_float (ceil (0.05 *. float_of_int fn))) in
      mean (Array.sub sorted (fn - k) k)
    end
  in
  let worst_mlu = if fn = 0 then nan else sorted.(fn - 1) in
  let mean_mlu = mean sorted in
  let fdiv a = float_of_int a /. float_of_int (max 1 n) in
  let delta_worst, delta_mean =
    match vs with
    | None -> (0., 0.)
    | Some s -> (worst_mlu -. s.worst_mlu, mean_mlu -. s.mean_mlu)
  in
  {
    policy;
    scenarios = n;
    disconnected_scenarios = !disc_scens;
    worst_mlu;
    worst_id = (match !worst with Some (_, i) -> i | None -> -1);
    mean_mlu;
    p50 = percentile sorted 0.50;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
    cvar95;
    mean_weight_changes = fdiv !sum_w;
    mean_waypoint_changes = fdiv !sum_wp;
    delta_worst;
    delta_mean;
  }

let summarize ~topology ~nominal_mlu outcomes =
  let static_rows =
    Array.map (fun o -> (o.static_disconnected, o.static_mlu, 0, 0)) outcomes
  in
  let static = summary_of Static static_rows in
  (* worst_id above indexes the rows array; map back to spec ids. *)
  let fix_id s =
    { s with worst_id = (if s.worst_id < 0 then -1 else outcomes.(s.worst_id).spec.id) }
  in
  let static = fix_id static in
  let requested =
    match Array.length outcomes with
    | 0 -> []
    | _ -> List.map (fun (po : policy_outcome) -> po.policy) outcomes.(0).policies
  in
  let others =
    List.mapi
      (fun pos p ->
        match p with
        | Static -> None
        | _ ->
          let rows =
            Array.map
              (fun o ->
                let po = List.nth o.policies pos in
                (po.disconnected, po.mlu, po.weight_changes, po.waypoint_changes))
              outcomes
          in
          Some (fix_id (summary_of ~vs:static p rows)))
      requested
    |> List.filter_map Fun.id
  in
  let worst_cases =
    Array.to_list outcomes
    |> List.map (fun o -> (o.spec, o.static_mlu, o.static_disconnected))
    |> List.stable_sort (fun (_, m1, d1) (_, m2, d2) ->
           compare (sev_key d2 m2) (sev_key d1 m1))
    |> List.filteri (fun i _ -> i < 5)
  in
  {
    topology;
    nominal_mlu;
    scenario_count = Array.length outcomes;
    summaries = static :: others;
    worst_cases;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

(* 17 significant digits round-trip any float, so equal reports always
   serialize to equal bytes (the bit-identity contract of the sweep). *)
let jfloat f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let report_to_json g r =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\"schema\": \"robustness-report/1\"";
  Buffer.add_string b (Printf.sprintf ", \"topology\": %S" r.topology);
  Buffer.add_string b (Printf.sprintf ", \"nominal_mlu\": %s" (jfloat r.nominal_mlu));
  Buffer.add_string b (Printf.sprintf ", \"scenarios\": %d" r.scenario_count);
  Buffer.add_string b ", \"policies\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"policy\": %S, \"scenarios\": %d, \"disconnected_scenarios\": \
            %d, \"worst_mlu\": %s, \"worst_scenario\": %d, \"mean_mlu\": %s, \
            \"p50\": %s, \"p95\": %s, \"p99\": %s, \"cvar95\": %s, \
            \"mean_weight_changes\": %s, \"mean_waypoint_changes\": %s, \
            \"delta_worst_vs_static\": %s, \"delta_mean_vs_static\": %s}"
           (policy_name s.policy) s.scenarios s.disconnected_scenarios
           (jfloat s.worst_mlu) s.worst_id (jfloat s.mean_mlu) (jfloat s.p50)
           (jfloat s.p95) (jfloat s.p99) (jfloat s.cvar95)
           (jfloat s.mean_weight_changes) (jfloat s.mean_waypoint_changes)
           (jfloat s.delta_worst) (jfloat s.delta_mean)))
    r.summaries;
  Buffer.add_string b "], \"worst_cases\": [";
  List.iteri
    (fun i (sp, mlu, disc) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\": %d, \"label\": %S, \"mlu\": %s, \"disconnected\": %d}"
           sp.id (spec_label g sp) (jfloat mlu) disc))
    r.worst_cases;
  Buffer.add_string b "]}";
  Buffer.contents b
