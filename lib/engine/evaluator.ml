open Netgraph

exception Unroutable of int * int

type sparse = { edges : int array; flows : float array }

type dag = {
  dist : float array;
  out_sp : int array array;
  order : int array;
}

type metrics = { mutable mlu : float; mutable phi : float }

(* ------------------------------------------------------------------ *)
(* Flat internal state                                                 *)
(* ------------------------------------------------------------------ *)

(* The public [dag] / [sparse] records above are view-layer
   materializations; internally everything lives in flat preallocated
   arrays so the probe loop (set_weight / evaluate / undo) allocates
   nothing once warm:

   - [fdag]: one shortest-path DAG in CSR form — dist (n floats),
     sp_cnt/sp_col (the per-node shortest-path out-edges, anchored at
     the graph CSR row offsets so each row can be rebuilt on its own),
     and the decreasing-distance propagation order.  Immutable once
     filled.
   - [urow]: one destination's unit-flow cache.  Entries for source s
     live at [u_off.(s) .. u_off.(s)+u_len.(s)) in the bump-allocated
     u_edges/u_flows storage; [u_stamp.(s) = u_gen] marks s as
     materialized, so invalidating the whole row is one counter bump.
   - [fvec]: one destination's cached load contribution (m floats).

   All three come from per-evaluator grow-only pools.  An object may be
   recycled into its pool only if it was born in the evaluator's current
   epoch: {!copy} bumps the epoch, so anything a clone might share
   (fdags and fvecs are shared by pointer; urows are deep-copied) is
   never overwritten.  Sentinels ([no_dag] & co.) stand in for "absent"
   so per-destination slots are plain arrays, not option arrays. *)

type fdag = {
  fdist : float array; (* n: distance to the destination *)
  sp_cnt : int array; (* n: tight out-edges of v, at the graph row base *)
  sp_col : int array; (* m: shortest-path out-edges, ascending per row *)
  forder : int array; (* n: finite-dist nodes, decreasing distance *)
  mutable forder_len : int;
  mutable d_born : int;
}

type urow = {
  u_stamp : int array; (* n *)
  mutable u_gen : int;
  u_off : int array; (* n *)
  u_len : int array; (* n *)
  mutable u_edges : int array; (* grow-only entry storage *)
  mutable u_flows : float array;
  mutable u_used : int;
  mutable u_born : int;
}

type fvec = { fv : float array; (* m *) mutable v_born : int }

(* Shared sentinels; their [born] of [min_int] never matches an epoch,
   so even an accidental recycle attempt is a no-op. *)
let no_dag =
  { fdist = [||]; sp_cnt = [||]; sp_col = [||]; forder = [||];
    forder_len = 0; d_born = min_int }

let no_urow =
  { u_stamp = [||]; u_gen = 0; u_off = [||]; u_len = [||]; u_edges = [||];
    u_flows = [||]; u_used = 0; u_born = min_int }

let no_fvec = { fv = [||]; v_born = min_int }

type t = {
  graph : Digraph.t;
  n : int;
  m : int;
  weights : float array;
  stats : Stats.t;
  mutable probe : Probe.t;
  (* identity stamps for the clone cache: [uid] names this evaluator,
     [commod_gen] counts commodity installs, and the [sync_src_*] pair
     records which (uid, commod_gen) of a source this evaluator's
     commodity tables are known to mirror (-1 = none) — it lets
     [sync_from] skip the commodity diff entirely on the common
     unchanged-demands path *)
  uid : int;
  mutable commod_gen : int;
  mutable sync_src_uid : int;
  mutable sync_src_gen : int;
  (* borrowed graph CSR (never mutated) *)
  g_src : int array;
  g_dst : int array;
  g_cap : float array;
  g_out_row : int array;
  g_out_col : int array;
  g_in_row : int array;
  g_in_col : int array;
  (* installed per-destination state; sentinels mean "absent" *)
  dags : fdag array;
  urows : urow array;
  dest_loads : fvec array;
  (* commodity bookkeeping, flat per destination: bd_src.(d)/(bd_size.(d))
     are the commodity sources and sizes in arrival order (a tuple array
     would box every size behind a pointer on the hot accumulate path) *)
  mutable bd_src : int array array;
  mutable bd_size : float array array;
  mutable active_dests : int array; (* dests with traffic, ascending *)
  loads_buf : float array;
  mutable loads_valid : bool;
  (* flat undo trail: entry i changed tr_edge.(i) from tr_oldw.(i); its
     per-destination snapshots are the tr_nsaved.(i) newest rows of the
     sv_* stack below it, its unmaterialized destinations the
     tr_nunknown.(i) newest of uk_dest *)
  mutable tr_edge : int array;
  mutable tr_oldw : float array;
  mutable tr_valid : bool array; (* false: undo falls back to a flush *)
  mutable tr_nsaved : int array;
  mutable tr_nunknown : int array;
  mutable tr_len : int;
  mutable sv_dest : int array;
  mutable sv_dag : fdag array;
  mutable sv_urow : urow array;
  mutable sv_vec : fvec array;
  mutable sv_len : int;
  mutable uk_dest : int array;
  mutable uk_len : int;
  (* object pools *)
  mutable pool_dag : fdag array;
  mutable pool_dag_len : int;
  mutable pool_urow : urow array;
  mutable pool_urow_len : int;
  mutable pool_vec : fvec array;
  mutable pool_vec_len : int;
  mutable epoch : int;
  (* scratch *)
  node_flow : float array;
  edge_flow : float array;
  touched : int array;
  (* DAG-repair scratch: generation-stamped membership marks plus the
     changed-node / rebuilt-row / surviving-order staging arrays (all
     length n) *)
  ord_stamp : int array;
  row_stamp : int array;
  taint_stamp : int array;
  ord_scratch : int array;
  row_scratch : int array;
  ord_surv : int array;
  mutable scratch_gen : int;
  pscratch : Paths.Scratch.t;
  emetrics : metrics;
}

let rel_eps = 1e-9

(* Dirtiness is decided with a slightly wider tolerance than DAG
   membership: a false positive only costs one unnecessary repair. *)
let dirty_eps = 1e-8

let check_weights g w =
  if Array.length w <> Digraph.edge_count g then
    invalid_arg "Evaluator: weight vector length mismatch";
  Array.iter
    (fun x -> if not (x > 0.) then invalid_arg "Evaluator: weights must be positive")
    w

let uid_counter = Atomic.make 0

let create ?(stats = Stats.create ()) ?(probe = Probe.null) graph weights =
  check_weights graph weights;
  let n = Digraph.node_count graph and m = Digraph.edge_count graph in
  {
    graph;
    n;
    m;
    weights = Array.copy weights;
    stats;
    probe;
    uid = Atomic.fetch_and_add uid_counter 1;
    commod_gen = 0;
    sync_src_uid = -1;
    sync_src_gen = -1;
    g_src = Digraph.srcs graph;
    g_dst = Digraph.dsts graph;
    g_cap = Digraph.caps graph;
    g_out_row = Digraph.out_offsets graph;
    g_out_col = Digraph.out_index graph;
    g_in_row = Digraph.in_offsets graph;
    g_in_col = Digraph.in_index graph;
    dags = Array.make n no_dag;
    urows = Array.make n no_urow;
    dest_loads = Array.make n no_fvec;
    bd_src = Array.make n [||];
    bd_size = Array.make n [||];
    active_dests = [||];
    loads_buf = Array.make m 0.;
    loads_valid = false;
    tr_edge = [||];
    tr_oldw = [||];
    tr_valid = [||];
    tr_nsaved = [||];
    tr_nunknown = [||];
    tr_len = 0;
    sv_dest = [||];
    sv_dag = [||];
    sv_urow = [||];
    sv_vec = [||];
    sv_len = 0;
    uk_dest = [||];
    uk_len = 0;
    pool_dag = [||];
    pool_dag_len = 0;
    pool_urow = [||];
    pool_urow_len = 0;
    pool_vec = [||];
    pool_vec_len = 0;
    epoch = 0;
    node_flow = Array.make n 0.;
    edge_flow = Array.make m 0.;
    touched = Array.make m 0;
    ord_stamp = Array.make n 0;
    row_stamp = Array.make n 0;
    taint_stamp = Array.make n 0;
    ord_scratch = Array.make n 0;
    row_scratch = Array.make n 0;
    ord_surv = Array.make n 0;
    scratch_gen = 0;
    pscratch = Paths.Scratch.create ();
    emetrics = { mlu = 0.; phi = 0. };
  }

let urow_copy ur =
  if ur == no_urow then no_urow
  else
    {
      u_stamp = Array.copy ur.u_stamp;
      u_gen = ur.u_gen;
      u_off = Array.copy ur.u_off;
      u_len = Array.copy ur.u_len;
      u_edges = Array.sub ur.u_edges 0 ur.u_used;
      u_flows = Array.sub ur.u_flows 0 ur.u_used;
      u_used = ur.u_used;
      (* never recycled: the blit is bounded, the object just ages out *)
      u_born = min_int;
    }

(* Clone for parallel search.  fdags and fvecs are immutable once
   filled, so the clone shares them by pointer; bumping the source's
   epoch guarantees neither side ever recycles a pre-copy object into
   its pool.  urows are mutable caches (they grow as new sources are
   materialized), so the clone gets bounded flat-array blits of the
   materialized rows.  The clone starts with an empty trail: whatever
   uncommitted weight changes the source held become the clone's
   committed state. *)
let copy ?stats t =
  t.epoch <- t.epoch + 1;
  let n = t.n and m = t.m in
  {
    graph = t.graph;
    n;
    m;
    weights = Array.copy t.weights;
    stats = (match stats with Some s -> s | None -> Stats.create ());
    (* Clones run on worker domains whose scheduling is dynamic; they
       never inherit the tracer probe, or span streams would depend on
       which worker claimed which task. *)
    probe = Probe.null;
    uid = Atomic.fetch_and_add uid_counter 1;
    commod_gen = 0;
    (* the clone's tables mirror the source's current commodity set *)
    sync_src_uid = t.uid;
    sync_src_gen = t.commod_gen;
    g_src = t.g_src;
    g_dst = t.g_dst;
    g_cap = t.g_cap;
    g_out_row = t.g_out_row;
    g_out_col = t.g_out_col;
    g_in_row = t.g_in_row;
    g_in_col = t.g_in_col;
    dags = Array.copy t.dags;
    urows = Array.map urow_copy t.urows;
    dest_loads = Array.copy t.dest_loads;
    bd_src = Array.copy t.bd_src;
    bd_size = Array.copy t.bd_size;
    active_dests = Array.copy t.active_dests;
    loads_buf = Array.copy t.loads_buf;
    loads_valid = t.loads_valid;
    tr_edge = [||];
    tr_oldw = [||];
    tr_valid = [||];
    tr_nsaved = [||];
    tr_nunknown = [||];
    tr_len = 0;
    sv_dest = [||];
    sv_dag = [||];
    sv_urow = [||];
    sv_vec = [||];
    sv_len = 0;
    uk_dest = [||];
    uk_len = 0;
    pool_dag = [||];
    pool_dag_len = 0;
    pool_urow = [||];
    pool_urow_len = 0;
    pool_vec = [||];
    pool_vec_len = 0;
    epoch = t.epoch;
    node_flow = Array.make n 0.;
    edge_flow = Array.make m 0.;
    touched = Array.make m 0;
    ord_stamp = Array.make n 0;
    row_stamp = Array.make n 0;
    taint_stamp = Array.make n 0;
    ord_scratch = Array.make n 0;
    row_scratch = Array.make n 0;
    ord_surv = Array.make n 0;
    scratch_gen = 0;
    pscratch = Paths.Scratch.create ();
    emetrics = { mlu = 0.; phi = 0. };
  }

let graph t = t.graph

let weights t = t.weights

let stats t = t.stats

let set_probe t probe = t.probe <- probe

let trail_length t = t.tr_len

(* ------------------------------------------------------------------ *)
(* Pools                                                               *)
(* ------------------------------------------------------------------ *)

let dag_alloc t =
  if t.pool_dag_len > 0 then begin
    t.pool_dag_len <- t.pool_dag_len - 1;
    let d = t.pool_dag.(t.pool_dag_len) in
    t.pool_dag.(t.pool_dag_len) <- no_dag;
    d.d_born <- t.epoch;
    d
  end
  else begin
    { fdist = Array.make t.n infinity; sp_cnt = Array.make t.n 0;
      sp_col = Array.make t.m 0; forder = Array.make t.n 0; forder_len = 0;
      d_born = t.epoch }
  end

let dag_recycle t d =
  if d != no_dag && d.d_born = t.epoch then begin
    if t.pool_dag_len = Array.length t.pool_dag then begin
      let grown = Array.make (max 8 (2 * t.pool_dag_len)) no_dag in
      Array.blit t.pool_dag 0 grown 0 t.pool_dag_len;
      t.pool_dag <- grown
    end;
    t.pool_dag.(t.pool_dag_len) <- d;
    t.pool_dag_len <- t.pool_dag_len + 1
  end

let urow_alloc t =
  if t.pool_urow_len > 0 then begin
    t.pool_urow_len <- t.pool_urow_len - 1;
    let ur = t.pool_urow.(t.pool_urow_len) in
    t.pool_urow.(t.pool_urow_len) <- no_urow;
    ur.u_gen <- ur.u_gen + 1; (* one bump invalidates every source *)
    ur.u_used <- 0;
    ur.u_born <- t.epoch;
    ur
  end
  else begin
    { u_stamp = Array.make t.n 0; u_gen = 1; u_off = Array.make t.n 0;
      u_len = Array.make t.n 0; u_edges = [||]; u_flows = [||]; u_used = 0;
      u_born = t.epoch }
  end

let urow_recycle t ur =
  if ur != no_urow && ur.u_born = t.epoch then begin
    if t.pool_urow_len = Array.length t.pool_urow then begin
      let grown = Array.make (max 8 (2 * t.pool_urow_len)) no_urow in
      Array.blit t.pool_urow 0 grown 0 t.pool_urow_len;
      t.pool_urow <- grown
    end;
    t.pool_urow.(t.pool_urow_len) <- ur;
    t.pool_urow_len <- t.pool_urow_len + 1
  end

let fvec_alloc t =
  if t.pool_vec_len > 0 then begin
    t.pool_vec_len <- t.pool_vec_len - 1;
    let v = t.pool_vec.(t.pool_vec_len) in
    t.pool_vec.(t.pool_vec_len) <- no_fvec;
    v.v_born <- t.epoch;
    v
  end
  else begin
    { fv = Array.make t.m 0.; v_born = t.epoch }
  end

let fvec_recycle t v =
  if v != no_fvec && v.v_born = t.epoch then begin
    if t.pool_vec_len = Array.length t.pool_vec then begin
      let grown = Array.make (max 8 (2 * t.pool_vec_len)) no_fvec in
      Array.blit t.pool_vec 0 grown 0 t.pool_vec_len;
      t.pool_vec <- grown
    end;
    t.pool_vec.(t.pool_vec_len) <- v;
    t.pool_vec_len <- t.pool_vec_len + 1
  end

(* ------------------------------------------------------------------ *)
(* Trail plumbing                                                      *)
(* ------------------------------------------------------------------ *)

(* Reads the displaced weight from [t.weights] itself: taking it as a
   float parameter would box it at this (non-inlinable) call boundary
   on every probe.  Callers must push before writing the new value. *)
let push_trail t edge =
  let cap = Array.length t.tr_edge in
  if t.tr_len = cap then begin
    let nc = max 8 (2 * cap) in
    let gi a = let b = Array.make nc 0 in Array.blit a 0 b 0 cap; b in
    t.tr_edge <- gi t.tr_edge;
    t.tr_nsaved <- gi t.tr_nsaved;
    t.tr_nunknown <- gi t.tr_nunknown;
    let bf = Array.make nc 0. in
    Array.blit t.tr_oldw 0 bf 0 cap;
    t.tr_oldw <- bf;
    let bb = Array.make nc false in
    Array.blit t.tr_valid 0 bb 0 cap;
    t.tr_valid <- bb
  end;
  let i = t.tr_len in
  t.tr_edge.(i) <- edge;
  t.tr_oldw.(i) <- t.weights.(edge);
  t.tr_valid.(i) <- true;
  t.tr_nsaved.(i) <- 0;
  t.tr_nunknown.(i) <- 0;
  t.tr_len <- i + 1

let push_saved t dest fd ur dl =
  let cap = Array.length t.sv_dest in
  if t.sv_len = cap then begin
    let nc = max 8 (2 * cap) in
    let b = Array.make nc 0 in
    Array.blit t.sv_dest 0 b 0 cap;
    t.sv_dest <- b;
    let bd = Array.make nc no_dag in
    Array.blit t.sv_dag 0 bd 0 cap;
    t.sv_dag <- bd;
    let bu = Array.make nc no_urow in
    Array.blit t.sv_urow 0 bu 0 cap;
    t.sv_urow <- bu;
    let bv = Array.make nc no_fvec in
    Array.blit t.sv_vec 0 bv 0 cap;
    t.sv_vec <- bv
  end;
  let i = t.sv_len in
  t.sv_dest.(i) <- dest;
  t.sv_dag.(i) <- fd;
  t.sv_urow.(i) <- ur;
  t.sv_vec.(i) <- dl;
  t.sv_len <- i + 1

let push_unknown t dest =
  let cap = Array.length t.uk_dest in
  if t.uk_len = cap then begin
    let b = Array.make (max 8 (2 * cap)) 0 in
    Array.blit t.uk_dest 0 b 0 cap;
    t.uk_dest <- b
  end;
  t.uk_dest.(t.uk_len) <- dest;
  t.uk_len <- t.uk_len + 1

(* ------------------------------------------------------------------ *)
(* Monomorphic in-place sorts (no closures, no polymorphic compare)    *)
(* ------------------------------------------------------------------ *)

(* Heapsort over node ids keyed by (distance descending, id ascending).
   The key is a total order, so any correct sort yields the exact
   permutation the previous Array.sort-based code produced.  The
   annotation pins the comparisons to floats: left polymorphic they
   compile to [caml_lessthan] over a generic array, whose element reads
   box one float each — the single allocation that kept the warm probe
   loop off zero minor words. *)
let order_after (dist : float array) a b =
  let da = dist.(a) and db = dist.(b) in
  if da < db then true else if da > db then false else a > b

let sift_order a dist root len =
  let r = ref root in
  let continue = ref true in
  while !continue do
    let l = (2 * !r) + 1 in
    if l >= len then continue := false
    else begin
      let c =
        if l + 1 < len && order_after dist a.(l + 1) a.(l) then l + 1 else l
      in
      if order_after dist a.(c) a.(!r) then begin
        let tmp = a.(c) in
        a.(c) <- a.(!r);
        a.(!r) <- tmp;
        r := c
      end
      else continue := false
    end
  done

let sort_order a len dist =
  for i = (len / 2) - 1 downto 0 do
    sift_order a dist i len
  done;
  for e = len - 1 downto 1 do
    let tmp = a.(0) in
    a.(0) <- a.(e);
    a.(e) <- tmp;
    sift_order a dist 0 e
  done

(* Ascending heapsort of an int prefix. *)
let sift_int a root len =
  let r = ref root in
  let continue = ref true in
  while !continue do
    let l = (2 * !r) + 1 in
    if l >= len then continue := false
    else begin
      let c = if l + 1 < len && a.(l + 1) > a.(l) then l + 1 else l in
      if a.(c) > a.(!r) then begin
        let tmp = a.(c) in
        a.(c) <- a.(!r);
        a.(!r) <- tmp;
        r := c
      end
      else continue := false
    end
  done

let sort_ints a len =
  for i = (len / 2) - 1 downto 0 do
    sift_int a i len
  done;
  for e = len - 1 downto 1 do
    let tmp = a.(0) in
    a.(0) <- a.(e);
    a.(e) <- tmp;
    sift_int a 0 e
  done

(* ------------------------------------------------------------------ *)
(* Shortest-path DAGs                                                  *)
(* ------------------------------------------------------------------ *)

(* Rebuilds DAG row [v] from fd.fdist: the node's shortest-path
   out-edges are its tight out-edges, in ascending edge-id order (the
   CSR row order), written at the graph CSR row base.  A row's content
   depends only on v's distance, its out-neighbours' distances and its
   out-edge weights — nothing outside the row — which is what lets
   [dag_repair] recompute rows selectively. *)
let fill_row t fd v =
  let dist = fd.fdist in
  let dv = dist.(v) in
  if dv = infinity then fd.sp_cnt.(v) <- 0
  else begin
    let w = t.weights in
    let out_row = t.g_out_row and out_col = t.g_out_col and gdst = t.g_dst in
    let tol = rel_eps *. (1. +. abs_float dv) in
    let base = out_row.(v) in
    let p = ref base in
    for i = base to out_row.(v + 1) - 1 do
      let e = out_col.(i) in
      let u = gdst.(e) in
      if dist.(u) < infinity && abs_float ((w.(e) +. dist.(u)) -. dv) <= tol
      then begin
        fd.sp_col.(!p) <- e;
        incr p
      end
    done;
    fd.sp_cnt.(v) <- !p - base
  end

(* Fills sp_cnt/sp_col/forder from fd.fdist (the from-scratch path). *)
let dag_fill t fd =
  let dist = fd.fdist in
  for v = 0 to t.n - 1 do
    fill_row t fd v
  done;
  let k = ref 0 in
  for v = 0 to t.n - 1 do
    if dist.(v) < infinity then begin
      fd.forder.(!k) <- v;
      incr k
    end
  done;
  fd.forder_len <- !k;
  sort_order fd.forder !k dist

(* Repairs [nfd] (fresh; fdist already updated by the incremental
   Dijkstra) from [old] (the pre-change DAG for the same destination)
   after the weight of [edge] changed.  Rows whose inputs are unchanged
   are taken from [old] wholesale (one blit); only the rows of
   distance-changed nodes, of their in-neighbours, and of the changed
   edge's source are recomputed.  forder is repaired by merging the
   surviving old order (unchanged keys, so still sorted) with the
   re-sorted changed nodes; the key is a total order, so the merge
   reproduces the full sort's permutation bit for bit. *)
let dag_repair t nfd old edge =
  let n = t.n in
  let odist = old.fdist and ndist = nfd.fdist in
  Array.blit old.sp_col 0 nfd.sp_col 0 t.m;
  Array.blit old.sp_cnt 0 nfd.sp_cnt 0 n;
  (* distance-changed nodes (infinity = infinity compares equal); they
     also seed the taint marks read by the unit-flow carry in
     [apply_weight] — a distance change reorders the node in forder, so
     any flow through it may accumulate in a different float order *)
  t.scratch_gen <- t.scratch_gen + 1;
  let gen = t.scratch_gen in
  let stamp = t.ord_stamp and ch = t.ord_scratch and ts = t.taint_stamp in
  let nch = ref 0 in
  for v = 0 to n - 1 do
    if odist.(v) <> ndist.(v) then begin
      stamp.(v) <- gen;
      ts.(v) <- gen;
      ch.(!nch) <- v;
      incr nch
    end
  done;
  let rstamp = t.row_stamp and rows = t.row_scratch in
  let in_row = t.g_in_row and in_col = t.g_in_col and gsrc = t.g_src in
  let nrows = ref 0 in
  for k = 0 to !nch - 1 do
    let c = ch.(k) in
    if rstamp.(c) <> gen then begin
      rstamp.(c) <- gen;
      rows.(!nrows) <- c;
      incr nrows
    end;
    for i = in_row.(c) to in_row.(c + 1) - 1 do
      let v = gsrc.(in_col.(i)) in
      if rstamp.(v) <> gen then begin
        rstamp.(v) <- gen;
        rows.(!nrows) <- v;
        incr nrows
      end
    done
  done;
  (let v = gsrc.(edge) in
   if rstamp.(v) <> gen then begin
     rstamp.(v) <- gen;
     rows.(!nrows) <- v;
     incr nrows
   end);
  for k = 0 to !nrows - 1 do
    let v = rows.(k) in
    fill_row t nfd v;
    (* a rebuilt row whose content actually differs taints the node *)
    if ts.(v) <> gen then begin
      let cnt = nfd.sp_cnt.(v) in
      if cnt <> old.sp_cnt.(v) then ts.(v) <- gen
      else begin
        let base = t.g_out_row.(v) in
        let i = ref 0 in
        while !i < cnt && nfd.sp_col.(base + !i) = old.sp_col.(base + !i) do
          incr i
        done;
        if !i < cnt then ts.(v) <- gen
      end
    end
  done;
  (* surviving old order, then the still-finite changed nodes sorted *)
  let surv = t.ord_surv in
  let ns = ref 0 in
  let ofo = old.forder in
  for k = 0 to old.forder_len - 1 do
    let v = ofo.(k) in
    if stamp.(v) <> gen then begin
      surv.(!ns) <- v;
      incr ns
    end
  done;
  let nf = ref 0 in
  for k = 0 to !nch - 1 do
    let v = ch.(k) in
    if ndist.(v) < infinity then begin
      ch.(!nf) <- v;
      incr nf
    end
  done;
  sort_order ch !nf ndist;
  let out = nfd.forder in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < !ns && !j < !nf do
    if order_after ndist surv.(!i) ch.(!j) then begin
      out.(!k) <- ch.(!j);
      incr j
    end
    else begin
      out.(!k) <- surv.(!i);
      incr i
    end;
    incr k
  done;
  while !i < !ns do
    out.(!k) <- surv.(!i);
    incr i;
    incr k
  done;
  while !j < !nf do
    out.(!k) <- ch.(!j);
    incr j;
    incr k
  done;
  nfd.forder_len <- !k;
  (* Taint propagation in increasing-distance order (DAG successors are
     processed first): a source left unmarked provably keeps
     bit-identical unit flows — its whole flow cone saw no distance or
     row change, so the splits, the reached set AND the relative
     propagation order (all cone nodes are merge survivors) are the
     same, float op for float op. *)
  let orow = t.g_out_row and gdst = t.g_dst in
  for k = nfd.forder_len - 1 downto 0 do
    let v = out.(k) in
    if ts.(v) <> gen then begin
      let base = orow.(v) in
      let cnt = nfd.sp_cnt.(v) in
      let i = ref 0 in
      while !i < cnt do
        if ts.(gdst.(nfd.sp_col.(base + !i))) = gen then begin
          ts.(v) <- gen;
          i := cnt
        end
        else incr i
      done
    end
  done

let fdag_for t dest =
  let fd = t.dags.(dest) in
  if fd != no_dag then begin
    t.stats.Stats.dag_hits <- t.stats.Stats.dag_hits + 1;
    fd
  end
  else begin
    t.stats.Stats.dag_misses <- t.stats.Stats.dag_misses + 1;
    t.stats.Stats.full_spf <- t.stats.Stats.full_spf + 1;
    let p = t.probe in
    let tok = if p.Probe.enabled then p.Probe.start "ev:spf_full" else -1 in
    let t0 = Mono.now () in
    let fd = dag_alloc t in
    Paths.dijkstra_to_into t.pscratch t.graph ~weights:t.weights ~target:dest
      ~dist:fd.fdist;
    dag_fill t fd;
    let ht = Stats.hot_times t.stats in
    ht.(Stats.hot_spf_full) <-
      ht.(Stats.hot_spf_full) +. (Mono.now () -. t0);
    if tok >= 0 then p.Probe.finish tok;
    t.dags.(dest) <- fd;
    fd
  end

let dag t ~target =
  let fd = fdag_for t target in
  {
    dist = Array.copy fd.fdist;
    out_sp =
      Array.init t.n (fun v ->
          Array.sub fd.sp_col t.g_out_row.(v) fd.sp_cnt.(v));
    order = Array.sub fd.forder 0 fd.forder_len;
  }

(* ECMP node throughflow of one (src, dst) unit, straight off the cached
   destination DAG: a single decreasing-distance propagation (the same
   sweep as [compute_unit_into]) whose per-node inflow is kept instead
   of consumed.  [into.(v)] is the fraction of the flow unit passing
   through [v] — the ECMP-aware betweenness contribution of the pair to
   node [v] — so preprocessing passes can score waypoint candidates
   without any new SPF run beyond the DAGs the load computation already
   built. *)
let node_flows t ~src ~dst ~into =
  if Array.length into <> t.n then
    invalid_arg "Evaluator.node_flows: array length <> node count";
  Array.fill into 0 t.n 0.;
  if src = dst then into.(src) <- 1.
  else begin
    let fd = fdag_for t dst in
    if fd.fdist.(src) = infinity then raise (Unroutable (src, dst));
    let gdst = t.g_dst and orow = t.g_out_row in
    into.(src) <- 1.;
    for k = 0 to fd.forder_len - 1 do
      let v = fd.forder.(k) in
      let f = into.(v) in
      if f > 0. && v <> dst then begin
        let lo = orow.(v) in
        let hi = lo + fd.sp_cnt.(v) in
        let share = f /. float_of_int (hi - lo) in
        for i = lo to hi - 1 do
          let u = gdst.(fd.sp_col.(i)) in
          into.(u) <- into.(u) +. share
        done
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Unit flows                                                          *)
(* ------------------------------------------------------------------ *)

let ensure_urow t dest =
  let ur = t.urows.(dest) in
  if ur != no_urow then ur
  else begin
    let ur = urow_alloc t in
    t.urows.(dest) <- ur;
    ur
  end

let urow_reserve ur need =
  if Array.length ur.u_edges < need then begin
    let nc = max 64 (max need (2 * Array.length ur.u_edges)) in
    let be = Array.make nc 0 in
    Array.blit ur.u_edges 0 be 0 ur.u_used;
    ur.u_edges <- be;
    let bf = Array.make nc 0. in
    Array.blit ur.u_flows 0 bf 0 ur.u_used;
    ur.u_flows <- bf
  end

(* Appends source [src]'s unit-flow entries to [ur] (the row of
   destination [dst]).  Propagation runs in decreasing-distance order:
   a node's whole inflow is known before it is processed because SP-DAG
   edges strictly decrease the distance to the target. *)
let compute_unit_into t ur src dst =
  t.stats.Stats.unit_misses <- t.stats.Stats.unit_misses + 1;
  if src = dst then begin
    ur.u_off.(src) <- ur.u_used;
    ur.u_len.(src) <- 0;
    ur.u_stamp.(src) <- ur.u_gen
  end
  else begin
    let fd = fdag_for t dst in
    if fd.fdist.(src) = infinity then raise (Unroutable (src, dst));
    let nf = t.node_flow and ef = t.edge_flow and tc = t.touched in
    let gdst = t.g_dst and orow = t.g_out_row in
    let ntouched = ref 0 in
    nf.(src) <- 1.;
    for k = 0 to fd.forder_len - 1 do
      let v = fd.forder.(k) in
      let f = nf.(v) in
      if f > 0. && v <> dst then begin
        nf.(v) <- 0.;
        let lo = orow.(v) in
        let hi = lo + fd.sp_cnt.(v) in
        let share = f /. float_of_int (hi - lo) in
        for i = lo to hi - 1 do
          let e = fd.sp_col.(i) in
          if ef.(e) = 0. then begin
            tc.(!ntouched) <- e;
            incr ntouched
          end;
          ef.(e) <- ef.(e) +. share;
          nf.(gdst.(e)) <- nf.(gdst.(e)) +. share
        done
      end
      else if v = dst then nf.(v) <- 0.
    done;
    let k = !ntouched in
    sort_ints tc k;
    urow_reserve ur (ur.u_used + k);
    let base = ur.u_used in
    let ue = ur.u_edges and uf = ur.u_flows in
    for i = 0 to k - 1 do
      let e = tc.(i) in
      ue.(base + i) <- e;
      uf.(base + i) <- ef.(e);
      ef.(e) <- 0.
    done;
    ur.u_off.(src) <- base;
    ur.u_len.(src) <- k;
    ur.u_stamp.(src) <- ur.u_gen;
    ur.u_used <- base + k
  end

(* The miss branch carries the hot_units timer pair; a hit costs no
   clock read (two [Mono.now] calls are comparable to a whole cached
   lookup). *)
let unit_entry t ur src dst =
  if ur.u_stamp.(src) = ur.u_gen then
    t.stats.Stats.unit_hits <- t.stats.Stats.unit_hits + 1
  else begin
    let t0 = Mono.now () in
    compute_unit_into t ur src dst;
    let ht = Stats.hot_times t.stats in
    ht.(Stats.hot_units) <- ht.(Stats.hot_units) +. (Mono.now () -. t0)
  end

let unit_load t ~src ~dst =
  let ur = ensure_urow t dst in
  unit_entry t ur src dst;
  let off = ur.u_off.(src) and len = ur.u_len.(src) in
  { edges = Array.sub ur.u_edges off len; flows = Array.sub ur.u_flows off len }

let add_unit t ~src ~dst ~scale ~into =
  let ur = ensure_urow t dst in
  unit_entry t ur src dst;
  let off = ur.u_off.(src) and len = ur.u_len.(src) in
  let ue = ur.u_edges and uf = ur.u_flows in
  for j = off to off + len - 1 do
    into.(ue.(j)) <- into.(ue.(j)) +. (scale *. uf.(j))
  done

(* ------------------------------------------------------------------ *)
(* Commodities and loads                                               *)
(* ------------------------------------------------------------------ *)

let set_commodities t commodities =
  let n = t.n in
  let buckets = Array.make n [] in
  Array.iter
    (fun (src, dst, size) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Evaluator.set_commodities: endpoint outside the graph";
      if src <> dst then buckets.(dst) <- (src, size) :: buckets.(dst))
    commodities;
  let active = ref [] in
  for dst = n - 1 downto 0 do
    let bucket = buckets.(dst) in
    let k = List.length bucket in
    let srcs = Array.make k 0 and sizes = Array.make k 0. in
    (* [bucket] holds the commodities in reverse arrival order *)
    let i = ref (k - 1) in
    List.iter
      (fun (s, sz) ->
        srcs.(!i) <- s;
        sizes.(!i) <- sz;
        decr i)
      bucket;
    t.bd_src.(dst) <- srcs;
    t.bd_size.(dst) <- sizes;
    t.dest_loads.(dst) <- no_fvec;
    if k > 0 then active := dst :: !active
  done;
  t.active_dests <- Array.of_list !active;
  (* Undo snapshots captured per-destination load contributions for the
     previous commodity set; they no longer apply. *)
  for i = 0 to t.tr_len - 1 do
    t.tr_valid.(i) <- false
  done;
  t.loads_valid <- false;
  t.commod_gen <- t.commod_gen + 1;
  t.sync_src_uid <- -1

(* Rebuilds one destination's load-contribution vector.  The stamp
   check is inlined and [compute_unit_into] is called raw so the whole
   rebuild is covered by a single hot_units timer pair instead of one
   clock read per commodity. *)
let dest_contribution t dest =
  let dl = t.dest_loads.(dest) in
  if dl != no_fvec then dl
  else begin
    let t0 = Mono.now () in
    let dl = fvec_alloc t in
    let v = dl.fv in
    Array.fill v 0 t.m 0.;
    let ur = ensure_urow t dest in
    let srcs = t.bd_src.(dest) and sizes = t.bd_size.(dest) in
    for i = 0 to Array.length srcs - 1 do
      let src = srcs.(i) in
      let size = sizes.(i) in
      if ur.u_stamp.(src) = ur.u_gen then
        t.stats.Stats.unit_hits <- t.stats.Stats.unit_hits + 1
      else compute_unit_into t ur src dest;
      let off = ur.u_off.(src) and len = ur.u_len.(src) in
      let ue = ur.u_edges and uf = ur.u_flows in
      for j = off to off + len - 1 do
        v.(ue.(j)) <- v.(ue.(j)) +. (size *. uf.(j))
      done
    done;
    t.dest_loads.(dest) <- dl;
    let ht = Stats.hot_times t.stats in
    ht.(Stats.hot_units) <- ht.(Stats.hot_units) +. (Mono.now () -. t0);
    dl
  end

let loads t =
  if not t.loads_valid then begin
    let t0 = Mono.now () in
    (* Re-summing cached per-destination vectors in a fixed order keeps
       the aggregate deterministic and drift-free across long
       update/undo sequences. *)
    let m = t.m in
    let buf = t.loads_buf in
    Array.fill buf 0 m 0.;
    let act = t.active_dests in
    for i = 0 to Array.length act - 1 do
      let dl = dest_contribution t act.(i) in
      let v = dl.fv in
      for e = 0 to m - 1 do
        buf.(e) <- buf.(e) +. v.(e)
      done
    done;
    t.loads_valid <- true;
    let ht = Stats.hot_times t.stats in
    ht.(Stats.hot_loads) <- ht.(Stats.hot_loads) +. (Mono.now () -. t0)
  end;
  t.loads_buf

let mlu_of_loads g loads =
  let best = ref 0. in
  for e = 0 to Digraph.edge_count g - 1 do
    let u = loads.(e) /. Digraph.cap g e in
    if u > !best then best := u
  done;
  !best

(* Fortz–Thorup piecewise-linear congestion cost.  phi_hat is the
   integral of the slope function 1/3/10/70/500/5000 over utilization. *)
let breakpoints = [| 0.; 1. /. 3.; 2. /. 3.; 0.9; 1.; 1.1 |]

let slopes = [| 1.; 3.; 10.; 70.; 500.; 5000. |]

let phi_hat u =
  let acc = ref 0. in
  let i = ref 0 in
  let continue = ref true in
  while !continue && !i < 6 do
    let lo = breakpoints.(!i) in
    let hi = if !i = 5 then infinity else breakpoints.(!i + 1) in
    if u > hi then acc := !acc +. (slopes.(!i) *. (hi -. lo))
    else begin
      acc := !acc +. (slopes.(!i) *. (u -. lo));
      continue := false
    end;
    incr i
  done;
  !acc

let phi_cost g loads =
  let total = ref 0. in
  for e = 0 to Digraph.edge_count g - 1 do
    let c = Digraph.cap g e in
    total := !total +. (c *. phi_hat (loads.(e) /. c))
  done;
  !total

let mlu t = mlu_of_loads t.graph (loads t)

let phi t = phi_cost t.graph (loads t)

(* Same piecewise constants as [phi_hat], named so the inlined ladder in
   [evaluate_into] reads like the loop it replaces. *)
let bp1 = 1. /. 3.
let bp2 = 2. /. 3.
let bp3 = 0.9
let bp4 = 1.
let bp5 = 1.1

let evaluate_into t r =
  t.stats.Stats.evaluations <- t.stats.Stats.evaluations + 1;
  let p = t.probe in
  let tok = if p.Probe.enabled then p.Probe.start "ev:eval" else -1 in
  let l = loads t in
  let cap = t.g_cap in
  let best = ref 0. in
  let total = ref 0. in
  for e = 0 to t.m - 1 do
    let c = cap.(e) in
    let u = l.(e) /. c in
    if u > !best then best := u;
    (* [phi_hat u], unrolled with the identical accumulation order (the
       function itself cannot be inlined and a non-inlined call would
       box [u] on every edge). *)
    let ph =
      if u > bp1 then begin
        let a = 1. *. (bp1 -. 0.) in
        if u > bp2 then begin
          let a = a +. (3. *. (bp2 -. bp1)) in
          if u > bp3 then begin
            let a = a +. (10. *. (bp3 -. bp2)) in
            if u > bp4 then begin
              let a = a +. (70. *. (bp4 -. bp3)) in
              if u > bp5 then begin
                let a = a +. (500. *. (bp5 -. bp4)) in
                a +. (5000. *. (u -. bp5))
              end
              else a +. (500. *. (u -. bp4))
            end
            else a +. (70. *. (u -. bp3))
          end
          else a +. (10. *. (u -. bp2))
        end
        else a +. (3. *. (u -. bp1))
      end
      else 1. *. (u -. 0.)
    in
    total := !total +. (c *. ph)
  done;
  r.mlu <- !best;
  r.phi <- !total;
  if tok >= 0 then p.Probe.finish tok

let evaluate t =
  evaluate_into t t.emetrics;
  (t.emetrics.mlu, t.emetrics.phi)

(* ------------------------------------------------------------------ *)
(* Weight updates                                                      *)
(* ------------------------------------------------------------------ *)

(* Applies a single weight change, repairing the dirty destinations
   into fresh (pool-allocated) objects so the captured pre-change state
   stays intact on the trail.

   The invalidation rule: with dist = distance-to-dest under the OLD
   weights, changing edge (u, v) from [old_w] to [new_w] can alter the
   DAG towards dest only if the edge was on it (old weight tight) or
   lands on it (new weight tight or shorter).  If either endpoint
   cannot reach dest the edge is on no path to it, under any weights. *)
let apply_weight t edge new_w =
  let old_w = t.weights.(edge) in
  let st = t.stats in
  st.Stats.weight_updates <- st.Stats.weight_updates + 1;
  let p = t.probe in
  let tok = if p.Probe.enabled then p.Probe.start "ev:repair" else -1 in
  let u = t.g_src.(edge) and v = t.g_dst.(edge) in
  push_trail t edge;
  let entry = t.tr_len - 1 in
  t.weights.(edge) <- new_w;
  let ht = Stats.hot_times st in
  for dest = 0 to t.n - 1 do
    let fd = t.dags.(dest) in
    if fd == no_dag then begin
      push_unknown t dest;
      t.tr_nunknown.(entry) <- t.tr_nunknown.(entry) + 1
    end
    else begin
      (* dest_dirty, inlined (a non-inlined call would box old_w/new_w
         on every destination).  [dv] never depends on edge (u, v) — a
         shortest path v -> dest revisiting v would be a cycle — so the
         edge matters only when v reaches dest.  An unreachable u
         ([du = infinity], i.e. the edge was disabled) goes dirty
         exactly when the new weight is finite: re-enabling may create
         the first path u -> dest, the link-up half of a flap. *)
      let du = fd.fdist.(u) and dv = fd.fdist.(v) in
      let dirty =
        dv < infinity
        &&
        if du = infinity then new_w < infinity
        else
          let tol = dirty_eps *. (1. +. abs_float du) in
          old_w +. dv <= du +. tol || new_w +. dv <= du +. tol
      in
      if dirty then begin
        st.Stats.dirty_dests <- st.Stats.dirty_dests + 1;
        st.Stats.incr_spf <- st.Stats.incr_spf + 1;
        push_saved t dest fd t.urows.(dest) t.dest_loads.(dest);
        t.tr_nsaved.(entry) <- t.tr_nsaved.(entry) + 1;
        let t0 = Mono.now () in
        let nfd = dag_alloc t in
        Array.blit fd.fdist 0 nfd.fdist 0 t.n;
        (Paths.Scratch.farg t.pscratch).(0) <- old_w;
        let touched =
          Paths.dijkstra_update_prepared t.pscratch t.graph
            ~weights:t.weights ~dist:nfd.fdist ~edge
        in
        st.Stats.spf_nodes_touched <- st.Stats.spf_nodes_touched + touched;
        dag_repair t nfd fd edge;
        ht.(Stats.hot_spf_incr) <-
          ht.(Stats.hot_spf_incr) +. (Mono.now () -. t0);
        t.dags.(dest) <- nfd;
        (* Fresh unit-flow row, carrying over the cached entries of
           sources the repair's taint pass proved unaffected: their
           recomputation would reproduce the same bits, so the blits
           replace it outright. *)
        let our = t.urows.(dest) in
        let nur = urow_alloc t in
        if our != no_urow then begin
          let ts = t.taint_stamp and gen = t.scratch_gen in
          let og = our.u_gen and ng = nur.u_gen in
          let ost = our.u_stamp in
          let carried = ref 0 in
          for s = 0 to t.n - 1 do
            if ost.(s) = og && ts.(s) <> gen then begin
              let len = our.u_len.(s) in
              urow_reserve nur (nur.u_used + len);
              Array.blit our.u_edges our.u_off.(s) nur.u_edges nur.u_used len;
              Array.blit our.u_flows our.u_off.(s) nur.u_flows nur.u_used len;
              nur.u_off.(s) <- nur.u_used;
              nur.u_len.(s) <- len;
              nur.u_stamp.(s) <- ng;
              nur.u_used <- nur.u_used + len;
              incr carried
            end
          done;
          st.Stats.unit_carried <- st.Stats.unit_carried + !carried
        end;
        t.urows.(dest) <- nur;
        if Array.length t.bd_src.(dest) > 0 then begin
          t.dest_loads.(dest) <- no_fvec;
          t.loads_valid <- false
        end
      end
      else st.Stats.clean_dests <- st.Stats.clean_dests + 1
    end
  done;
  if tok >= 0 then p.Probe.finish tok

let set_weight t ~edge new_w =
  if not (new_w > 0.) then invalid_arg "Evaluator.set_weight: weight must be positive";
  if t.weights.(edge) <> new_w then apply_weight t edge new_w

(* An infinite weight is exactly edge removal for shortest-path state:
   Dijkstra never relaxes through it, so no DAG contains the edge and a
   node whose every route used it ends up at distance infinity.  The
   change rides the ordinary trail, so [undo] restores the link. *)
let disable_edge t ~edge =
  t.stats.Stats.edges_disabled <- t.stats.Stats.edges_disabled + 1;
  set_weight t ~edge infinity

let edge_disabled t ~edge = t.weights.(edge) = infinity

(* Link repair is just the opposite weight change: restoring a finite
   weight re-inserts the edge into every relevant DAG through the same
   dirty-destination repair, so a disable/enable round trip needs no
   rebuild and leaves no residue (asserted byte-identical by
   test_engine). *)
let enable_edge t ~edge w =
  if not (edge_disabled t ~edge) then
    invalid_arg "Evaluator.enable_edge: edge is not disabled";
  if not (w > 0.) || w = infinity then
    invalid_arg "Evaluator.enable_edge: weight must be positive and finite";
  set_weight t ~edge w

let reachable t ~src ~dst = src = dst || (fdag_for t dst).fdist.(src) < infinity

(* Past this many changed entries a bulk update flushes the caches: the
   per-edge repairs would collectively touch most destinations anyway. *)
let bulk_threshold = 4

let flush t =
  for dest = 0 to t.n - 1 do
    t.dags.(dest) <- no_dag;
    t.urows.(dest) <- no_urow;
    t.dest_loads.(dest) <- no_fvec
  done;
  t.loads_valid <- false

let set_weights t w =
  check_weights t.graph w;
  let ndiff = ref 0 in
  for e = 0 to t.m - 1 do
    if t.weights.(e) <> w.(e) then incr ndiff
  done;
  if !ndiff <= bulk_threshold then begin
    for e = 0 to t.m - 1 do
      if t.weights.(e) <> w.(e) then set_weight t ~edge:e w.(e)
    done
  end
  else begin
    for e = 0 to t.m - 1 do
      if t.weights.(e) <> w.(e) then begin
        push_trail t e;
        t.tr_valid.(t.tr_len - 1) <- false;
        t.weights.(e) <- w.(e)
      end
    done;
    t.stats.Stats.weight_updates <- t.stats.Stats.weight_updates + !ndiff;
    flush t
  end

let clear_saved_refs t =
  for i = 0 to t.sv_len - 1 do
    t.sv_dag.(i) <- no_dag;
    t.sv_urow.(i) <- no_urow;
    t.sv_vec.(i) <- no_fvec
  done;
  t.sv_len <- 0;
  t.uk_len <- 0;
  t.tr_len <- 0

let commit t =
  if t.tr_len > 0 then begin
    t.stats.Stats.commits <- t.stats.Stats.commits + 1;
    (* The captured pre-change objects can never be restored now; feed
       the current-epoch ones back to the pools. *)
    for i = 0 to t.sv_len - 1 do
      dag_recycle t t.sv_dag.(i);
      urow_recycle t t.sv_urow.(i);
      fvec_recycle t t.sv_vec.(i)
    done;
    clear_saved_refs t
  end

let undo t =
  if t.tr_len > 0 then begin
    t.stats.Stats.undos <- t.stats.Stats.undos + 1;
    let p = t.probe in
    let tok = if p.Probe.enabled then p.Probe.start "ev:undo" else -1 in
    let all_valid = ref true in
    for i = 0 to t.tr_len - 1 do
      if not t.tr_valid.(i) then all_valid := false
    done;
    if !all_valid then begin
      (* Newest first: restoring in reverse application order recovers
         the exact original state even when one edge changed twice.
         Objects installed by the reverted repairs are recycled — an
         installed object is never referenced by any snapshot (snapshots
         capture only pre-repair state), so this cannot double-free. *)
      let sv_end = ref t.sv_len and uk_end = ref t.uk_len in
      for i = t.tr_len - 1 downto 0 do
        t.weights.(t.tr_edge.(i)) <- t.tr_oldw.(i);
        let ns = t.tr_nsaved.(i) in
        for j = !sv_end - ns to !sv_end - 1 do
          let dest = t.sv_dest.(j) in
          let cur = t.dags.(dest) in
          if cur != t.sv_dag.(j) then dag_recycle t cur;
          let curu = t.urows.(dest) in
          if curu != t.sv_urow.(j) then urow_recycle t curu;
          let curv = t.dest_loads.(dest) in
          if curv != t.sv_vec.(j) then fvec_recycle t curv;
          t.dags.(dest) <- t.sv_dag.(j);
          t.urows.(dest) <- t.sv_urow.(j);
          t.dest_loads.(dest) <- t.sv_vec.(j);
          t.sv_dag.(j) <- no_dag;
          t.sv_urow.(j) <- no_urow;
          t.sv_vec.(j) <- no_fvec;
          if Array.length t.bd_src.(dest) > 0 then t.loads_valid <- false
        done;
        sv_end := !sv_end - ns;
        (* Destinations first materialized after the change were built
           under the now-reverted weights: drop them. *)
        let nu = t.tr_nunknown.(i) in
        for j = !uk_end - nu to !uk_end - 1 do
          let dest = t.uk_dest.(j) in
          if t.dags.(dest) != no_dag then begin
            dag_recycle t t.dags.(dest);
            urow_recycle t t.urows.(dest);
            fvec_recycle t t.dest_loads.(dest);
            t.dags.(dest) <- no_dag;
            t.urows.(dest) <- no_urow;
            t.dest_loads.(dest) <- no_fvec;
            if Array.length t.bd_src.(dest) > 0 then t.loads_valid <- false
          end
        done;
        uk_end := !uk_end - nu
      done;
      t.sv_len <- 0;
      t.uk_len <- 0;
      t.tr_len <- 0
    end
    else begin
      (* Some entry lost its snapshot (bulk update or a commodity swap
         mid-trail): revert the weights and rebuild lazily. *)
      for i = 0 to t.tr_len - 1 do
        t.weights.(t.tr_edge.(i)) <- t.tr_oldw.(i)
      done;
      t.stats.Stats.weight_updates <-
        t.stats.Stats.weight_updates + t.tr_len;
      flush t;
      clear_saved_refs t
    end;
    if tok >= 0 then p.Probe.finish tok
  end

(* ------------------------------------------------------------------ *)
(* Delta sync and the persistent clone cache                           *)
(* ------------------------------------------------------------------ *)

(* [sync_weights t w] moves [t]'s committed weight state to [w] through
   the cheapest correct path: pending probe changes are rolled back,
   the diff rides the usual [set_weights] machinery (few changes repair
   incrementally, a bulk diff flushes), and the result is committed.
   Because every cache is a pure function of (graph, weights,
   commodities), the sync history leaves no trace in evaluation
   results — only in which caches are still warm. *)
(* A sync wants to PRESERVE the target's warm caches: unlike a probe
   bulk-update, per-edge incremental repair beats a flush far past
   [bulk_threshold], because a flushed clone pays a full SPF per
   destination on its next evaluations — the dominant cost of the old
   eager-mirror protocol.  Only past this many diffs (where the repairs
   would collectively touch most destinations anyway) does the flush
   win. *)
let sync_bulk_threshold = 64

let sync_weights t w =
  if t.tr_len > 0 then undo t;
  check_weights t.graph w;
  let ndiff = ref 0 in
  for e = 0 to t.m - 1 do
    if t.weights.(e) <> w.(e) then incr ndiff
  done;
  if !ndiff > 0 then begin
    if !ndiff <= sync_bulk_threshold then
      for e = 0 to t.m - 1 do
        if t.weights.(e) <> w.(e) then set_weight t ~edge:e w.(e)
      done
    else set_weights t w;
    if t.tr_len > 0 then commit t
  end

(* Delta-sync a worker's persistent clone to the caller's current
   state: weight diff plus commodity-table diff.  The commodity pass is
   skipped entirely when the stamp pair proves [dst] already mirrors
   [src]'s current set; otherwise the (immutable once installed)
   per-destination source/size arrays are shared by pointer and only
   the destinations whose bucket actually changed drop their cached
   load contribution. *)
let sync_from ~src dst =
  if dst == src then invalid_arg "Evaluator.sync_from: cannot sync from self";
  if dst.graph != src.graph then
    invalid_arg "Evaluator.sync_from: evaluators share no graph";
  sync_weights dst src.weights;
  if not (dst.sync_src_uid = src.uid && dst.sync_src_gen = src.commod_gen)
  then begin
    let changed = ref false in
    for d = 0 to dst.n - 1 do
      let ss = src.bd_src.(d) in
      if not (dst.bd_src.(d) == ss
              || (dst.bd_src.(d) = ss && dst.bd_size.(d) = src.bd_size.(d)))
      then begin
        dst.bd_src.(d) <- ss;
        dst.bd_size.(d) <- src.bd_size.(d);
        dst.dest_loads.(d) <- no_fvec;
        changed := true
      end
    done;
    if !changed || dst.active_dests <> src.active_dests then begin
      dst.active_dests <- Array.copy src.active_dests;
      dst.loads_valid <- false
    end
  end;
  dst.sync_src_uid <- src.uid;
  dst.sync_src_gen <- src.commod_gen

(* Persistent per-worker clone cache.  One slot per worker index; a hit
   whose weight diff is small delta-syncs the cached clone in place, a
   miss (first use, different graph) or a bulk diff rebuilds the slot
   with a full [copy] — which shares the source's warm caches by
   pointer and therefore beats flushing a stale clone cold.  The two
   outcomes are counted on the clone's own [Stats.t] (clone_syncs /
   clone_copies) so the usual merge-back rolls them into the run
   totals. *)
module Clones = struct
  type evaluator = t

  type cache = { mutable slots : evaluator option array }

  let create () = { slots = [||] }

  let clear c = c.slots <- [||]

  (* Past this many changed weights an incremental sync would repair
     most destinations anyway. *)
  let sync_cutoff = 16

  let get c ~worker ~src =
    if worker < 1 then invalid_arg "Evaluator.Clones.get: worker must be >= 1";
    if worker >= Array.length c.slots then begin
      let grown = Array.make (worker + 1) None in
      Array.blit c.slots 0 grown 0 (Array.length c.slots);
      c.slots <- grown
    end;
    let fresh () =
      let cl = copy src in
      cl.stats.Stats.clone_copies <- cl.stats.Stats.clone_copies + 1;
      c.slots.(worker) <- Some cl;
      cl
    in
    match c.slots.(worker) with
    | Some cl when cl != src && cl.graph == src.graph ->
      let small = ref true in
      let ndiff = ref 0 in
      let e = ref 0 in
      while !small && !e < src.m do
        if cl.weights.(!e) <> src.weights.(!e) then begin
          incr ndiff;
          if !ndiff > sync_cutoff then small := false
        end;
        incr e
      done;
      if !small then begin
        sync_from ~src cl;
        cl.stats.Stats.clone_syncs <- cl.stats.Stats.clone_syncs + 1;
        cl
      end
      else fresh ()
    | _ -> fresh ()
end

(* ------------------------------------------------------------------ *)
(* One-shot helpers                                                    *)
(* ------------------------------------------------------------------ *)

let mlu_of ?stats g w commodities =
  let t = create ?stats g w in
  set_commodities t commodities;
  t.stats.Stats.evaluations <- t.stats.Stats.evaluations + 1;
  mlu t
