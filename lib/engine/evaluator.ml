open Netgraph

exception Unroutable of int * int

type sparse = { edges : int array; flows : float array }

type dag = {
  dist : float array;
  out_sp : int array array;
  order : int array;
}

(* Pre-change state of one destination, captured when a weight update
   dirties it.  Undoing restores these pointers verbatim, so a probe
   (set_weight / evaluate / undo) repairs forward exactly once and
   never pays a repair on the way back. *)
type snapshot = {
  s_dest : int;
  s_dag : dag option;
  s_units : sparse option array;
  s_dest_load : float array option;
}

type trail_entry = {
  e_edge : int;
  e_old_w : float;
  e_saved : snapshot list;  (* dirty destinations, pre-change state *)
  e_unknown : int list;  (* destinations with no DAG at change time *)
  e_snap_valid : bool;  (* false: undo must fall back to a flush *)
}

type t = {
  graph : Digraph.t;
  weights : float array;
  stats : Stats.t;
  mutable probe : Probe.t;
  dags : dag option array; (* per destination *)
  units : sparse option array array; (* [dst].[src] *)
  (* commodity bookkeeping *)
  mutable by_dest : (int * float) array array; (* dest -> (src, size) *)
  mutable active_dests : int array; (* dests with traffic, ascending *)
  dest_loads : float array option array; (* cached per-dest contribution *)
  loads_buf : float array;
  mutable loads_valid : bool;
  (* undo trail: uncommitted weight changes, newest first *)
  mutable trail : trail_entry list;
  (* scratch buffers for unit-flow propagation *)
  node_flow : float array;
  edge_flow : float array;
  touched : int array;
}

let rel_eps = 1e-9

(* Dirtiness is decided with a slightly wider tolerance than DAG
   membership: a false positive only costs one unnecessary repair. *)
let dirty_eps = 1e-8

let check_weights g w =
  if Array.length w <> Digraph.edge_count g then
    invalid_arg "Evaluator: weight vector length mismatch";
  Array.iter
    (fun x -> if not (x > 0.) then invalid_arg "Evaluator: weights must be positive")
    w

let create ?(stats = Stats.create ()) ?(probe = Probe.null) graph weights =
  check_weights graph weights;
  let n = Digraph.node_count graph and m = Digraph.edge_count graph in
  {
    graph;
    weights = Array.copy weights;
    stats;
    probe;
    dags = Array.make n None;
    units = Array.make_matrix n n None;
    by_dest = Array.make n [||];
    active_dests = [||];
    dest_loads = Array.make n None;
    loads_buf = Array.make m 0.;
    loads_valid = false;
    trail = [];
    node_flow = Array.make n 0.;
    edge_flow = Array.make m 0.;
    touched = Array.make m 0;
  }

(* Deep clone for parallel search: the clone owns every array the
   evaluator mutates in place ([weights], the cache index arrays, the
   [units] rows and the scratch buffers), while the cached values they
   point at — dag records, sparse unit-flow vectors, per-destination
   load vectors — are immutable after construction and safely shared
   across domains.  The clone starts with an empty trail: whatever
   uncommitted weight changes the source held are captured as the
   clone's committed state. *)
let copy ?stats t =
  let n = Digraph.node_count t.graph and m = Digraph.edge_count t.graph in
  {
    graph = t.graph;
    weights = Array.copy t.weights;
    stats = (match stats with Some s -> s | None -> Stats.create ());
    (* Clones run on worker domains whose scheduling is dynamic; they
       never inherit the tracer probe, or span streams would depend on
       which worker claimed which task. *)
    probe = Probe.null;
    dags = Array.copy t.dags;
    units = Array.map Array.copy t.units;
    by_dest = Array.copy t.by_dest;
    active_dests = Array.copy t.active_dests;
    dest_loads = Array.copy t.dest_loads;
    loads_buf = Array.copy t.loads_buf;
    loads_valid = t.loads_valid;
    trail = [];
    node_flow = Array.make n 0.;
    edge_flow = Array.make m 0.;
    touched = Array.make m 0;
  }

let graph t = t.graph

let weights t = t.weights

let stats t = t.stats

let set_probe t probe = t.probe <- probe

let trail_length t = List.length t.trail

(* ------------------------------------------------------------------ *)
(* Shortest-path DAGs                                                  *)
(* ------------------------------------------------------------------ *)

(* out_sp and order are pure functions of the distance array; shared by
   the from-scratch build and the incremental repair. *)
let dag_of_dist g w dist =
  let n = Digraph.node_count g in
  let out_sp =
    Array.init n (fun v ->
        if dist.(v) = infinity then [||]
        else begin
          let es = Digraph.out_edges g v in
          let keep = ref [] in
          for i = Array.length es - 1 downto 0 do
            let e = es.(i) in
            let u = Digraph.dst g e in
            if
              dist.(u) < infinity
              && abs_float ((w.(e) +. dist.(u)) -. dist.(v))
                 <= rel_eps *. (1. +. abs_float dist.(v))
            then keep := e :: !keep
          done;
          Array.of_list !keep
        end)
  in
  let finite = ref [] in
  for v = n - 1 downto 0 do
    if dist.(v) < infinity then finite := v :: !finite
  done;
  let order = Array.of_list !finite in
  (* Decreasing distance; ties broken by node id for determinism. *)
  Array.sort
    (fun a b ->
      let c = compare dist.(b) dist.(a) in
      if c <> 0 then c else compare a b)
    order;
  { dist; out_sp; order }

let dag t ~target =
  match t.dags.(target) with
  | Some d ->
    t.stats.Stats.dag_hits <- t.stats.Stats.dag_hits + 1;
    d
  | None ->
    t.stats.Stats.dag_misses <- t.stats.Stats.dag_misses + 1;
    t.stats.Stats.full_spf <- t.stats.Stats.full_spf + 1;
    let p = t.probe in
    let tok = if p.Probe.enabled then p.Probe.start "ev:spf_full" else -1 in
    let d =
      Stats.time t.stats "spf_full" (fun () ->
          let dist = Paths.dijkstra_to t.graph ~weights:t.weights ~target in
          dag_of_dist t.graph t.weights dist)
    in
    if tok >= 0 then p.Probe.finish tok;
    t.dags.(target) <- Some d;
    d

(* ------------------------------------------------------------------ *)
(* Unit flows                                                          *)
(* ------------------------------------------------------------------ *)

let compute_unit t src dst =
  if src = dst then { edges = [||]; flows = [||] }
  else begin
    let d = dag t ~target:dst in
    if d.dist.(src) = infinity then raise (Unroutable (src, dst));
    let nf = t.node_flow and ef = t.edge_flow in
    let ntouched = ref 0 in
    nf.(src) <- 1.;
    (* Propagate in decreasing-distance order; a node's whole inflow is
       known before it is processed because SP-DAG edges strictly
       decrease the distance to the target. *)
    Array.iter
      (fun v ->
        let f = nf.(v) in
        if f > 0. && v <> dst then begin
          nf.(v) <- 0.;
          let es = d.out_sp.(v) in
          let share = f /. float_of_int (Array.length es) in
          Array.iter
            (fun e ->
              if ef.(e) = 0. then begin
                t.touched.(!ntouched) <- e;
                incr ntouched
              end;
              ef.(e) <- ef.(e) +. share;
              nf.(Digraph.dst t.graph e) <- nf.(Digraph.dst t.graph e) +. share)
            es
        end
        else if v = dst then nf.(v) <- 0.)
      d.order;
    let k = !ntouched in
    let ids = Array.sub t.touched 0 k in
    Array.sort compare ids;
    let flows = Array.map (fun e -> ef.(e)) ids in
    Array.iter (fun e -> ef.(e) <- 0.) ids;
    { edges = ids; flows }
  end

let unit_load t ~src ~dst =
  match t.units.(dst).(src) with
  | Some s ->
    t.stats.Stats.unit_hits <- t.stats.Stats.unit_hits + 1;
    s
  | None ->
    t.stats.Stats.unit_misses <- t.stats.Stats.unit_misses + 1;
    let s = Stats.time t.stats "units" (fun () -> compute_unit t src dst) in
    t.units.(dst).(src) <- Some s;
    s

let add_sparse acc s ~scale =
  for i = 0 to Array.length s.edges - 1 do
    acc.(s.edges.(i)) <- acc.(s.edges.(i)) +. (scale *. s.flows.(i))
  done

(* ------------------------------------------------------------------ *)
(* Commodities and loads                                               *)
(* ------------------------------------------------------------------ *)

let set_commodities t commodities =
  let n = Digraph.node_count t.graph in
  let buckets = Array.make n [] in
  Array.iter
    (fun (src, dst, size) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Evaluator.set_commodities: endpoint outside the graph";
      if src <> dst then buckets.(dst) <- (src, size) :: buckets.(dst))
    commodities;
  let active = ref [] in
  for dst = n - 1 downto 0 do
    t.by_dest.(dst) <- Array.of_list (List.rev buckets.(dst));
    t.dest_loads.(dst) <- None;
    if buckets.(dst) <> [] then active := dst :: !active
  done;
  t.active_dests <- Array.of_list !active;
  (* Undo snapshots captured per-destination load contributions for the
     previous commodity set; they no longer apply. *)
  t.trail <- List.map (fun en -> { en with e_snap_valid = false }) t.trail;
  t.loads_valid <- false

let dest_contribution t dest =
  match t.dest_loads.(dest) with
  | Some v -> v
  | None ->
    let v = Array.make (Digraph.edge_count t.graph) 0. in
    Array.iter
      (fun (src, size) -> add_sparse v (unit_load t ~src ~dst:dest) ~scale:size)
      t.by_dest.(dest);
    t.dest_loads.(dest) <- Some v;
    v

let loads t =
  if not t.loads_valid then begin
    Stats.time t.stats "loads" (fun () ->
        (* Re-summing cached per-destination vectors in a fixed order
           keeps the aggregate deterministic and drift-free across long
           update/undo sequences. *)
        let m = Digraph.edge_count t.graph in
        Array.fill t.loads_buf 0 m 0.;
        Array.iter
          (fun dest ->
            let v = dest_contribution t dest in
            for e = 0 to m - 1 do
              t.loads_buf.(e) <- t.loads_buf.(e) +. v.(e)
            done)
          t.active_dests);
    t.loads_valid <- true
  end;
  t.loads_buf

let mlu_of_loads g loads =
  let best = ref 0. in
  for e = 0 to Digraph.edge_count g - 1 do
    let u = loads.(e) /. Digraph.cap g e in
    if u > !best then best := u
  done;
  !best

(* Fortz–Thorup piecewise-linear congestion cost.  phi_hat is the
   integral of the slope function 1/3/10/70/500/5000 over utilization. *)
let breakpoints = [| 0.; 1. /. 3.; 2. /. 3.; 0.9; 1.; 1.1 |]

let slopes = [| 1.; 3.; 10.; 70.; 500.; 5000. |]

let phi_hat u =
  let acc = ref 0. in
  let i = ref 0 in
  let continue = ref true in
  while !continue && !i < 6 do
    let lo = breakpoints.(!i) in
    let hi = if !i = 5 then infinity else breakpoints.(!i + 1) in
    if u > hi then acc := !acc +. (slopes.(!i) *. (hi -. lo))
    else begin
      acc := !acc +. (slopes.(!i) *. (u -. lo));
      continue := false
    end;
    incr i
  done;
  !acc

let phi_cost g loads =
  let total = ref 0. in
  for e = 0 to Digraph.edge_count g - 1 do
    let c = Digraph.cap g e in
    total := !total +. (c *. phi_hat (loads.(e) /. c))
  done;
  !total

let mlu t = mlu_of_loads t.graph (loads t)

let phi t = phi_cost t.graph (loads t)

let evaluate t =
  t.stats.Stats.evaluations <- t.stats.Stats.evaluations + 1;
  let p = t.probe in
  let tok = if p.Probe.enabled then p.Probe.start "ev:eval" else -1 in
  let l = loads t in
  let r = (mlu_of_loads t.graph l, phi_cost t.graph l) in
  if tok >= 0 then p.Probe.finish tok;
  r

(* ------------------------------------------------------------------ *)
(* Weight updates                                                      *)
(* ------------------------------------------------------------------ *)

(* The invalidation rule.  With dist = distance-to-dest under the OLD
   weights, changing edge (u, v) from [old_w] to [new_w] can alter the
   DAG towards dest only if the edge was on it (old weight tight) or
   lands on it (new weight tight or shorter).  If either endpoint
   cannot reach dest the edge is on no path to it, under any weights. *)
let dest_dirty d u v ~old_w ~new_w =
  let du = d.dist.(u) and dv = d.dist.(v) in
  du < infinity && dv < infinity
  && (let tol = dirty_eps *. (1. +. abs_float du) in
      old_w +. dv <= du +. tol || new_w +. dv <= du +. tol)

(* Applies a single weight change, repairing the dirty destinations
   into FRESH arrays so the captured pre-change state stays intact, and
   returns the trail entry that would revert it. *)
let apply_weight t edge new_w =
  let old_w = t.weights.(edge) in
  t.stats.Stats.weight_updates <- t.stats.Stats.weight_updates + 1;
  let p = t.probe in
  let tok = if p.Probe.enabled then p.Probe.start "ev:repair" else -1 in
  let u = Digraph.src t.graph edge and v = Digraph.dst t.graph edge in
  let n = Digraph.node_count t.graph in
  let dirty = ref [] and unknown = ref [] in
  for dest = n - 1 downto 0 do
    match t.dags.(dest) with
    | None -> unknown := dest :: !unknown
    | Some d ->
      if dest_dirty d u v ~old_w ~new_w then dirty := dest :: !dirty
      else t.stats.Stats.clean_dests <- t.stats.Stats.clean_dests + 1
  done;
  t.weights.(edge) <- new_w;
  let saved =
    List.map
      (fun dest ->
        t.stats.Stats.dirty_dests <- t.stats.Stats.dirty_dests + 1;
        t.stats.Stats.incr_spf <- t.stats.Stats.incr_spf + 1;
        let d = Option.get t.dags.(dest) in
        let snap =
          { s_dest = dest; s_dag = t.dags.(dest); s_units = t.units.(dest);
            s_dest_load = t.dest_loads.(dest) }
        in
        let repaired =
          Stats.time t.stats "spf_incr" (fun () ->
              let dist = Array.copy d.dist in
              let touched =
                Paths.dijkstra_update_to t.graph ~weights:t.weights
                  ~target:dest ~dist ~edge ~old_weight:old_w
              in
              t.stats.Stats.spf_nodes_touched <-
                t.stats.Stats.spf_nodes_touched + touched;
              dag_of_dist t.graph t.weights dist)
        in
        t.dags.(dest) <- Some repaired;
        t.units.(dest) <- Array.make n None;
        if Array.length t.by_dest.(dest) > 0 then begin
          t.dest_loads.(dest) <- None;
          t.loads_valid <- false
        end;
        snap)
      !dirty
  in
  if tok >= 0 then p.Probe.finish tok;
  { e_edge = edge; e_old_w = old_w; e_saved = saved; e_unknown = !unknown;
    e_snap_valid = true }

let set_weight t ~edge new_w =
  if not (new_w > 0.) then invalid_arg "Evaluator.set_weight: weight must be positive";
  if t.weights.(edge) <> new_w then
    t.trail <- apply_weight t edge new_w :: t.trail

(* An infinite weight is exactly edge removal for shortest-path state:
   Dijkstra never relaxes through it, so no DAG contains the edge and a
   node whose every route used it ends up at distance infinity.  The
   change rides the ordinary trail, so [undo] restores the link. *)
let disable_edge t ~edge =
  t.stats.Stats.edges_disabled <- t.stats.Stats.edges_disabled + 1;
  set_weight t ~edge infinity

let edge_disabled t ~edge = t.weights.(edge) = infinity

let reachable t ~src ~dst =
  src = dst || (dag t ~target:dst).dist.(src) < infinity

(* Past this many changed entries a bulk update flushes the caches: the
   per-edge repairs would collectively touch most destinations anyway. *)
let bulk_threshold = 4

let flush t =
  let n = Digraph.node_count t.graph in
  for dest = 0 to n - 1 do
    if t.dags.(dest) <> None then begin
      t.dags.(dest) <- None;
      for s = 0 to n - 1 do
        t.units.(dest).(s) <- None
      done
    end;
    t.dest_loads.(dest) <- None
  done;
  t.loads_valid <- false

let set_weights t w =
  check_weights t.graph w;
  let m = Digraph.edge_count t.graph in
  let diffs = ref [] and ndiff = ref 0 in
  for e = m - 1 downto 0 do
    if t.weights.(e) <> w.(e) then begin
      diffs := e :: !diffs;
      incr ndiff
    end
  done;
  if !ndiff <= bulk_threshold then
    List.iter (fun e -> set_weight t ~edge:e w.(e)) !diffs
  else begin
    List.iter
      (fun e ->
        t.trail <-
          { e_edge = e; e_old_w = t.weights.(e); e_saved = []; e_unknown = [];
            e_snap_valid = false }
          :: t.trail;
        t.weights.(e) <- w.(e))
      !diffs;
    t.stats.Stats.weight_updates <- t.stats.Stats.weight_updates + !ndiff;
    flush t
  end

let commit t =
  if t.trail <> [] then begin
    t.stats.Stats.commits <- t.stats.Stats.commits + 1;
    t.trail <- []
  end

let undo t =
  if t.trail <> [] then begin
    t.stats.Stats.undos <- t.stats.Stats.undos + 1;
    let p = t.probe in
    let tok = if p.Probe.enabled then p.Probe.start "ev:undo" else -1 in
    let entries = t.trail in
    t.trail <- [];
    (* Newest first: restoring in reverse application order recovers the
       exact original state even when one edge changed twice. *)
    if List.for_all (fun en -> en.e_snap_valid) entries then
      List.iter
        (fun en ->
          t.weights.(en.e_edge) <- en.e_old_w;
          List.iter
            (fun s ->
              t.dags.(s.s_dest) <- s.s_dag;
              t.units.(s.s_dest) <- s.s_units;
              t.dest_loads.(s.s_dest) <- s.s_dest_load;
              if Array.length t.by_dest.(s.s_dest) > 0 then
                t.loads_valid <- false)
            en.e_saved;
          (* Destinations first materialized after the change were built
             under the now-reverted weights: drop them. *)
          List.iter
            (fun dest ->
              if t.dags.(dest) <> None then begin
                t.dags.(dest) <- None;
                t.units.(dest) <- Array.make (Digraph.node_count t.graph) None;
                t.dest_loads.(dest) <- None;
                if Array.length t.by_dest.(dest) > 0 then
                  t.loads_valid <- false
              end)
            en.e_unknown)
        entries
    else begin
      (* Some entry lost its snapshot (bulk update or a commodity swap
         mid-trail): revert the weights and rebuild lazily. *)
      List.iter (fun en -> t.weights.(en.e_edge) <- en.e_old_w) entries;
      t.stats.Stats.weight_updates <-
        t.stats.Stats.weight_updates + List.length entries;
      flush t
    end;
    if tok >= 0 then p.Probe.finish tok
  end

(* ------------------------------------------------------------------ *)
(* One-shot helpers                                                    *)
(* ------------------------------------------------------------------ *)

let mlu_of ?stats g w commodities =
  let t = create ?stats g w in
  set_commodities t commodities;
  t.stats.Stats.evaluations <- t.stats.Stats.evaluations + 1;
  mlu t
