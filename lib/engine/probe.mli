(** Injected span hooks for the engine's hot paths.

    The engine cannot depend on the observability layer above it, so
    tracers hand the {!Evaluator} this record of closures instead.
    [start name] opens a span and returns a token; [finish token]
    closes it.  Implementations must be cheap and exception-free — the
    evaluator calls them with its own invariants mid-flight.

    The [enabled] flag is the fast path: instrumented sites read it and
    skip both closures when false, so the {!null} probe costs one load
    and a branch per site and allocates nothing. *)

type t = {
  enabled : bool;
  start : string -> int;  (** open a span by name, returning a token *)
  finish : int -> unit;  (** close the span for a token from [start] *)
}

val null : t
(** The disabled probe: [enabled = false], [start] returns [-1],
    [finish] ignores. *)
