(** Shared incremental TE evaluation engine.

    An evaluator owns the ECMP shortest-path state of one
    [(graph, weights)] pair: per-destination shortest-path DAGs, the
    memoized sparse unit-load vectors derived from them, and — once a
    commodity list is attached — the per-destination and aggregate link
    loads.  All optimizers evaluate candidate weight settings through
    this one service instead of rebuilding the state from scratch.

    The point of the engine is the {e incremental} path: after
    {!set_weight} only the destinations whose distance-to-target arrays
    can actually change (decided from the changed edge's endpoint
    distances) are repaired, through the restricted Dijkstra of
    {!Netgraph.Paths.dijkstra_update_to}; every other destination keeps
    its DAG, its memoized unit flows and its cached load contribution.
    A trail of uncommitted weight changes supports the local-search move
    protocol: probe with [set_weight], read {!evaluate}, then either
    {!commit} the move or {!undo} it (which repairs the state back the
    same incremental way).

    Every cache decision is counted in the evaluator's {!Stats.t}. *)

exception Unroutable of int * int
(** Raised when a commodity's destination is unreachable from its
    source (reachability does not depend on weights). *)

type sparse = {
  edges : int array;  (** touched edge ids, ascending *)
  flows : float array;  (** load per touched edge for one flow unit *)
}

type dag = {
  dist : float array;  (** distance of every node to the target *)
  out_sp : int array array;  (** per node: outgoing shortest-path edges *)
  order : int array;  (** finite-distance nodes, decreasing distance *)
}

type metrics = { mutable mlu : float; mutable phi : float }
(** Result cell for {!evaluate_into}: a float-only record, so writing a
    result never allocates (unlike returning a tuple). *)

type t

val create :
  ?stats:Stats.t -> ?probe:Probe.t -> Netgraph.Digraph.t -> float array -> t
(** Caches are lazy: nothing is computed until first use.  The weight
    vector is copied.  [probe] (default {!Probe.null}) receives spans
    for the engine's hot paths: ["ev:eval"] around {!evaluate},
    ["ev:spf_full"] around a from-scratch Dijkstra, ["ev:repair"]
    around the dirty-destination repair of one weight change, and
    ["ev:undo"] around {!undo}.  @raise Invalid_argument on a length
    mismatch or a non-positive weight. *)

val copy : ?stats:Stats.t -> t -> t
(** Deep clone for parallel search: the clone captures the source's
    current weights (uncommitted changes included, as committed state —
    its undo trail starts empty) and inherits its warm caches, after
    which the two evaluate and mutate fully independently.  Cached
    immutable values (DAGs, unit-flow vectors, per-destination loads)
    are structurally shared, so a copy is cheap and clones may run on
    separate domains.  [stats] defaults to a {e fresh} [Stats.t]: a
    clone never shares its source's counters (merge them back with
    {!Stats.merge} if desired).  The clone's probe is reset to
    {!Probe.null}: worker-domain span streams would depend on dynamic
    task scheduling, so clones are never traced implicitly.  Do not
    call [copy] while another domain is concurrently using [t]. *)

val graph : t -> Netgraph.Digraph.t

val weights : t -> float array
(** The live weight vector.  Do not mutate; change weights through
    {!set_weight} / {!set_weights}. *)

val stats : t -> Stats.t

val set_probe : t -> Probe.t -> unit
(** Replaces the span probe installed at {!create} time.  Install
    {!Probe.null} to stop tracing; only ever call from the domain that
    owns the evaluator. *)

(** {1 Shortest-path state} *)

val dag : t -> target:int -> dag
(** The shortest-path DAG towards [target] under the current weights
    (built on first use, then cached until invalidated).  The returned
    record is a fresh materialization of the internal flat (CSR)
    representation — an allocating view for cold callers; it stays
    valid after further updates. *)

val node_flows : t -> src:int -> dst:int -> into:float array -> unit
(** [node_flows t ~src ~dst ~into] writes the ECMP node throughflow of
    one [(src, dst)] flow unit into the caller's per-node accumulator
    [into] (length [n], fully overwritten): [into.(v)] is the fraction
    of the unit passing through [v] — [1.] at the endpoints, [0.] off
    every shortest path — i.e. the pair's ECMP-aware betweenness
    contribution to [v].  Computed by one decreasing-distance sweep of
    the cached destination DAG, so scoring passes (candidate pruning)
    cost no SPF run beyond what evaluating the loads already built.
    @raise Unroutable if [dst] is unreachable from [src]. *)

val unit_load : t -> src:int -> dst:int -> sparse
(** Per-edge load of one unit of ECMP flow from [src] to [dst]
    ([src = dst] yields the empty vector).  Materializes a fresh view
    of the cached flat entries on every call; hot accumulation loops
    should use {!add_unit} instead.
    @raise Unroutable if [dst] is unreachable from [src]. *)

val add_unit : t -> src:int -> dst:int -> scale:float -> into:float array -> unit
(** [add_unit t ~src ~dst ~scale ~into] adds [scale] times the unit
    ECMP flow of [(src, dst)] onto the caller's per-edge accumulator
    [into] (length [m]), straight from the cached flat entries — the
    allocation-free equivalent of folding {!unit_load} with a scale.
    Identical float accumulation order to the [unit_load]-based loop it
    replaces.  @raise Unroutable if [dst] is unreachable from [src]. *)

(** {1 Commodities and evaluation} *)

val set_commodities : t -> (int * int * float) array -> unit
(** Attaches the [(src, dst, size)] flows whose aggregate link loads
    {!loads} / {!mlu} / {!phi} report.  Waypointed demands are expressed
    by listing each segment as its own commodity.  Resets the load
    caches but keeps all shortest-path state. *)

val loads : t -> float array
(** Aggregate per-edge load of the attached commodities under the
    current weights.  The returned array is the evaluator's internal
    buffer — copy it before mutating.
    @raise Unroutable if some commodity is unroutable. *)

val mlu : t -> float
(** Max over links of load / capacity. *)

val phi : t -> float
(** The Fortz–Thorup piecewise-linear congestion cost of the current
    loads (slopes 1, 3, 10, 70, 500, 5000 at breakpoints 1/3, 2/3,
    9/10, 1, 11/10). *)

val evaluate : t -> float * float
(** [(mlu, phi)] of the current weights; counts one evaluation in the
    stats (the granularity the local searches budget by).  Allocates
    the result tuple; probe loops that must stay allocation-free use
    {!evaluate_into}. *)

val evaluate_into : t -> metrics -> unit
(** {!evaluate} into a caller-owned {!metrics} cell.  Together with
    {!set_weight} and {!undo} this forms the engine's zero-allocation
    probe loop: after warmup (pools and scratch at steady state) one
    probe iteration allocates no minor words at all — the invariant the
    [@alloc-smoke] Gc test enforces. *)

(** {1 Weight updates} *)

val set_weight : t -> edge:int -> float -> unit
(** Changes one weight and incrementally repairs the affected
    destination state.  The previous value is pushed on the undo trail.
    @raise Invalid_argument on a non-positive weight. *)

val disable_edge : t -> edge:int -> unit
(** Models a link failure by setting the edge's weight to [infinity]:
    Dijkstra never relaxes through an infinite weight, so the edge
    vanishes from every shortest-path DAG and nodes whose only routes
    used it become unreachable (infinite distance) — exactly the
    removed-edge semantics, but paid for with the same dirty-destination
    invalidation as any weight change instead of a graph rebuild.  The
    change lands on the undo trail; {!undo} restores the link. *)

val edge_disabled : t -> edge:int -> bool

val enable_edge : t -> edge:int -> float -> unit
(** Brings a {!disable_edge}d link back at the given (finite, positive)
    weight — the link-up half of a flap.  Like any weight change it
    rides the undo trail and repairs incrementally; a committed
    disable followed by a committed enable at the original weight
    round-trips to byte-identical evaluator results with no full
    rebuild.  @raise Invalid_argument if the edge is not currently
    disabled or the weight is not positive and finite. *)

val reachable : t -> src:int -> dst:int -> bool
(** Is [dst] reachable from [src] under the current weights (disabled
    edges excluded)?  Served from the cached destination DAG; unlike
    {!unit_load} this never raises, so failure sweeps can count
    disconnected demands instead of aborting. *)

val set_weights : t -> float array -> unit
(** Bulk update.  Few changed entries are applied as incremental
    single-weight updates; a large diff flushes the caches instead.
    All changed entries land on the undo trail.
    @raise Invalid_argument on length mismatch or non-positive entry. *)

val commit : t -> unit
(** Accepts every weight change since the last commit/undo: clears the
    undo trail. *)

val undo : t -> unit
(** Reverts every weight change since the last commit, repairing the
    evaluator state through the same incremental machinery. *)

val trail_length : t -> int
(** Number of uncommitted weight changes. *)

(** {1 Delta sync and the persistent clone cache} *)

val sync_weights : t -> float array -> unit
(** [sync_weights t w] moves [t]'s {e committed} state to the weight
    vector [w]: rolls back any pending trail, applies the diff through
    the {!set_weights} machinery (few changes repair incrementally, a
    bulk diff flushes) and commits.  Because every cache is a pure
    function of (graph, weights, commodities), results after a sync are
    bit-identical to a fresh evaluator's — only cache warmth differs.
    @raise Invalid_argument on length mismatch or non-positive entry. *)

val sync_from : src:t -> t -> unit
(** [sync_from ~src dst] delta-syncs [dst] to [src]'s current state:
    {!sync_weights} to [src]'s weights (disabled edges — infinite
    weights — ride the same diff), then a commodity-table diff that
    shares [src]'s per-destination source/size arrays by pointer and
    drops only the load caches of destinations whose bucket changed.
    The commodity pass is skipped entirely when an internal stamp pair
    proves [dst] already mirrors [src]'s current set (the common case
    for a clone reused under unchanged demands).  After the call [dst]
    evaluates bit-identically to [copy src].  The two evaluators must
    share their graph (physically); [dst]'s waypoint state is implicit
    in the commodity list, so waypointed demand sets sync like any
    other.  @raise Invalid_argument if [dst == src] or the graphs
    differ. *)

(** Persistent per-worker clone cache: the piece that makes repeated
    parallel fan-outs cheap.  The first use of a worker slot pays a
    full {!copy}; later uses delta-{!sync_from} the cached clone to the
    caller's current state, unless the weight diff exceeds a small
    cutoff (a bulk sync would flush the clone cold — a fresh copy
    shares the source's warm caches instead and wins).  Slot outcomes
    are counted in the clone's own {!Stats.t} ([clone_syncs] /
    [clone_copies]); callers merge those back (and reset them) after
    each fan-out, as with any clone stats.  Not domain-safe: get
    clones from the orchestrating domain, before the fan-out. *)
module Clones : sig
  type evaluator := t

  type cache

  val create : unit -> cache

  val clear : cache -> unit
  (** Drops every cached clone (e.g. when the topology changes). *)

  val get : cache -> worker:int -> src:evaluator -> evaluator
  (** The warm clone for worker slot [worker] ([>= 1]; slot 0 is the
      caller's own evaluator), synced to [src]'s current state.
      @raise Invalid_argument if [worker < 1]. *)
end

(** {1 Static helpers} *)

val phi_cost : Netgraph.Digraph.t -> float array -> float
(** Fortz–Thorup cost [sum_e cap_e * phi_hat (load_e / cap_e)] of an
    arbitrary load vector; the single definition the optimizers share. *)

val mlu_of_loads : Netgraph.Digraph.t -> float array -> float

val mlu_of :
  ?stats:Stats.t -> Netgraph.Digraph.t -> float array ->
  (int * int * float) array -> float
(** One-shot: fresh evaluator, attach commodities, read the MLU. *)
