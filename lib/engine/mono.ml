external now : unit -> float = "te_monotonic_seconds"
