external now : unit -> (float[@unboxed])
  = "te_monotonic_seconds" "te_monotonic_seconds_unboxed"
[@@noalloc]
