type t = {
  mutable evaluations : int;
  mutable full_spf : int;
  mutable incr_spf : int;
  mutable spf_nodes_touched : int;
  mutable dag_hits : int;
  mutable dag_misses : int;
  mutable unit_hits : int;
  mutable unit_misses : int;
  mutable unit_carried : int;
  mutable weight_updates : int;
  mutable dirty_dests : int;
  mutable clean_dests : int;
  mutable commits : int;
  mutable undos : int;
  mutable scenarios : int;
  mutable edges_disabled : int;
  mutable par_regions : int;
  mutable par_tasks : int;
  mutable par_jobs : int;
  mutable par_wall : float;
  mutable par_busy : float;
  mutable worker_evals : int array;
  mutable candidates_pruned : int;
  mutable candidates_kept : int;
  mutable clone_syncs : int;
  mutable clone_copies : int;
  mutable milp_nodes : int;
  mutable lp_solves : int;
  mutable lp_pivots : int;
  mutable lp_warm_solves : int;
  mutable lp_cycle_limits : int;
  timer_tbl : (string, float) Hashtbl.t;
  hot : float array; (* flat accumulators for the hot phases below *)
}

(* Hot-phase timer slots.  The evaluator's inner loops must not allocate,
   and accumulating a duration into the hashtable boxes the float on
   every store; a float-array slot does not.  [timers] / [pp] / [to_json]
   fold these back under their phase names, so consumers see one
   namespace. *)
let hot_spf_full = 0
let hot_spf_incr = 1
let hot_units = 2
let hot_loads = 3
let hot_phases = [| "spf_full"; "spf_incr"; "units"; "loads" |]

let create () =
  {
    evaluations = 0;
    full_spf = 0;
    incr_spf = 0;
    spf_nodes_touched = 0;
    dag_hits = 0;
    dag_misses = 0;
    unit_hits = 0;
    unit_misses = 0;
    unit_carried = 0;
    weight_updates = 0;
    dirty_dests = 0;
    clean_dests = 0;
    commits = 0;
    undos = 0;
    scenarios = 0;
    edges_disabled = 0;
    par_regions = 0;
    par_tasks = 0;
    par_jobs = 0;
    par_wall = 0.;
    par_busy = 0.;
    worker_evals = [||];
    candidates_pruned = 0;
    candidates_kept = 0;
    clone_syncs = 0;
    clone_copies = 0;
    milp_nodes = 0;
    lp_solves = 0;
    lp_pivots = 0;
    lp_warm_solves = 0;
    lp_cycle_limits = 0;
    timer_tbl = Hashtbl.create 8;
    hot = Array.make (Array.length hot_phases) 0.;
  }

let hot_times s = s.hot

let reset s =
  s.evaluations <- 0;
  s.full_spf <- 0;
  s.incr_spf <- 0;
  s.spf_nodes_touched <- 0;
  s.dag_hits <- 0;
  s.dag_misses <- 0;
  s.unit_hits <- 0;
  s.unit_misses <- 0;
  s.unit_carried <- 0;
  s.weight_updates <- 0;
  s.dirty_dests <- 0;
  s.clean_dests <- 0;
  s.commits <- 0;
  s.undos <- 0;
  s.scenarios <- 0;
  s.edges_disabled <- 0;
  s.par_regions <- 0;
  s.par_tasks <- 0;
  s.par_jobs <- 0;
  s.par_wall <- 0.;
  s.par_busy <- 0.;
  s.worker_evals <- [||];
  s.candidates_pruned <- 0;
  s.candidates_kept <- 0;
  s.clone_syncs <- 0;
  s.clone_copies <- 0;
  s.milp_nodes <- 0;
  s.lp_solves <- 0;
  s.lp_pivots <- 0;
  s.lp_warm_solves <- 0;
  s.lp_cycle_limits <- 0;
  Hashtbl.reset s.timer_tbl;
  Array.fill s.hot 0 (Array.length s.hot) 0.

let add_time s phase dt =
  let prev = try Hashtbl.find s.timer_tbl phase with Not_found -> 0. in
  Hashtbl.replace s.timer_tbl phase (prev +. dt)

let record_parallel s ~jobs ~tasks ~wall ~busy =
  s.par_regions <- s.par_regions + 1;
  s.par_tasks <- s.par_tasks + tasks;
  if jobs > s.par_jobs then s.par_jobs <- jobs;
  s.par_wall <- s.par_wall +. wall;
  s.par_busy <- s.par_busy +. busy

let record_scenario s = s.scenarios <- s.scenarios + 1

let record_milp s ~nodes ~lp_solves ~lp_pivots ~warm_solves ~cycle_limits =
  s.milp_nodes <- s.milp_nodes + nodes;
  s.lp_solves <- s.lp_solves + lp_solves;
  s.lp_pivots <- s.lp_pivots + lp_pivots;
  s.lp_warm_solves <- s.lp_warm_solves + warm_solves;
  s.lp_cycle_limits <- s.lp_cycle_limits + cycle_limits

let record_lp_solve s ~pivots =
  s.lp_solves <- s.lp_solves + 1;
  s.lp_pivots <- s.lp_pivots + pivots

let record_pruning s ~pruned ~kept =
  if pruned < 0 || kept < 0 then
    invalid_arg "Stats.record_pruning: negative count";
  s.candidates_pruned <- s.candidates_pruned + pruned;
  s.candidates_kept <- s.candidates_kept + kept

let record_worker_evals s ~worker n =
  if worker < 0 then invalid_arg "Stats.record_worker_evals: negative worker";
  if worker >= Array.length s.worker_evals then begin
    let grown = Array.make (worker + 1) 0 in
    Array.blit s.worker_evals 0 grown 0 (Array.length s.worker_evals);
    s.worker_evals <- grown
  end;
  s.worker_evals.(worker) <- s.worker_evals.(worker) + n

let parallel_efficiency s =
  if s.par_regions = 0 || s.par_jobs = 0 || s.par_wall <= 0. then nan
  else s.par_busy /. (s.par_wall *. float_of_int s.par_jobs)

let merge ~into s =
  into.evaluations <- into.evaluations + s.evaluations;
  into.full_spf <- into.full_spf + s.full_spf;
  into.incr_spf <- into.incr_spf + s.incr_spf;
  into.spf_nodes_touched <- into.spf_nodes_touched + s.spf_nodes_touched;
  into.dag_hits <- into.dag_hits + s.dag_hits;
  into.dag_misses <- into.dag_misses + s.dag_misses;
  into.unit_hits <- into.unit_hits + s.unit_hits;
  into.unit_misses <- into.unit_misses + s.unit_misses;
  into.unit_carried <- into.unit_carried + s.unit_carried;
  into.weight_updates <- into.weight_updates + s.weight_updates;
  into.dirty_dests <- into.dirty_dests + s.dirty_dests;
  into.clean_dests <- into.clean_dests + s.clean_dests;
  into.commits <- into.commits + s.commits;
  into.undos <- into.undos + s.undos;
  into.scenarios <- into.scenarios + s.scenarios;
  into.edges_disabled <- into.edges_disabled + s.edges_disabled;
  into.par_regions <- into.par_regions + s.par_regions;
  into.par_tasks <- into.par_tasks + s.par_tasks;
  if s.par_jobs > into.par_jobs then into.par_jobs <- s.par_jobs;
  into.par_wall <- into.par_wall +. s.par_wall;
  into.par_busy <- into.par_busy +. s.par_busy;
  into.candidates_pruned <- into.candidates_pruned + s.candidates_pruned;
  into.candidates_kept <- into.candidates_kept + s.candidates_kept;
  into.clone_syncs <- into.clone_syncs + s.clone_syncs;
  into.clone_copies <- into.clone_copies + s.clone_copies;
  into.milp_nodes <- into.milp_nodes + s.milp_nodes;
  into.lp_solves <- into.lp_solves + s.lp_solves;
  into.lp_pivots <- into.lp_pivots + s.lp_pivots;
  into.lp_warm_solves <- into.lp_warm_solves + s.lp_warm_solves;
  into.lp_cycle_limits <- into.lp_cycle_limits + s.lp_cycle_limits;
  Array.iteri (fun w n -> if n <> 0 then record_worker_evals into ~worker:w n)
    s.worker_evals;
  Hashtbl.iter (fun phase dt -> add_time into phase dt) s.timer_tbl;
  for i = 0 to Array.length s.hot - 1 do
    into.hot.(i) <- into.hot.(i) +. s.hot.(i)
  done

let time s phase f =
  let t0 = Mono.now () in
  let finally () = add_time s phase (Mono.now () -. t0) in
  match f () with
  | v ->
    finally ();
    v
  | exception e ->
    finally ();
    raise e

let timers s =
  let acc = Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.timer_tbl [] in
  (* Fold the flat hot-phase slots under their names (summing with any
     hashtable entry of the same name, e.g. after a cross-version merge). *)
  let acc =
    Array.to_list
      (Array.mapi
         (fun i name ->
           (name, s.hot.(i) +. (List.assoc_opt name acc |> Option.value ~default:0.)))
         hot_phases)
    @ List.filter (fun (k, _) -> not (Array.mem k hot_phases)) acc
  in
  List.filter (fun (_, dt) -> dt <> 0.) acc
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let full_rebuild_fraction s =
  let total = s.full_spf + s.incr_spf in
  if total = 0 then nan else float_of_int s.full_spf /. float_of_int total

let counters s =
  [ ("evaluations", s.evaluations); ("full_spf", s.full_spf);
    ("incr_spf", s.incr_spf); ("spf_nodes_touched", s.spf_nodes_touched);
    ("dag_hits", s.dag_hits); ("dag_misses", s.dag_misses);
    ("unit_hits", s.unit_hits); ("unit_misses", s.unit_misses);
    ("unit_carried", s.unit_carried);
    ("weight_updates", s.weight_updates); ("dirty_dests", s.dirty_dests);
    ("clean_dests", s.clean_dests); ("commits", s.commits);
    ("undos", s.undos); ("scenarios", s.scenarios);
    ("edges_disabled", s.edges_disabled); ("par_regions", s.par_regions);
    ("par_tasks", s.par_tasks); ("par_jobs", s.par_jobs);
    ("candidates_pruned", s.candidates_pruned);
    ("candidates_kept", s.candidates_kept);
    ("clone_syncs", s.clone_syncs); ("clone_copies", s.clone_copies);
    ("milp_nodes", s.milp_nodes); ("lp_solves", s.lp_solves);
    ("lp_pivots", s.lp_pivots); ("lp_warm_solves", s.lp_warm_solves);
    ("lp_cycle_limits", s.lp_cycle_limits) ]

let pp ppf s =
  Format.fprintf ppf "@[<v>engine stats:@,";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %-18s %d@," k v)
    (counters s);
  if s.par_regions > 0 then begin
    Format.fprintf ppf "  %-18s %.6f s@," "par_wall" s.par_wall;
    Format.fprintf ppf "  %-18s %.6f s@," "par_busy" s.par_busy;
    Format.fprintf ppf "  %-18s %.3f@," "par_efficiency" (parallel_efficiency s);
    Array.iteri
      (fun w n -> Format.fprintf ppf "  evals[worker %2d]   %d@," w n)
      s.worker_evals
  end;
  List.iter
    (fun (phase, dt) -> Format.fprintf ppf "  %-18s %.6f s@," ("t:" ^ phase) dt)
    (timers s);
  Format.fprintf ppf "@]"

let to_json s =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ", " in
  List.iter
    (fun (k, v) ->
      sep ();
      Buffer.add_string b (Printf.sprintf "%S: %d" k v))
    (counters s);
  if s.par_regions > 0 then begin
    sep ();
    Buffer.add_string b (Printf.sprintf "\"par_wall\": %.6f" s.par_wall);
    sep ();
    Buffer.add_string b (Printf.sprintf "\"par_busy\": %.6f" s.par_busy);
    sep ();
    Buffer.add_string b
      (Printf.sprintf "\"par_efficiency\": %.4f" (parallel_efficiency s));
    sep ();
    Buffer.add_string b "\"worker_evals\": [";
    Array.iteri
      (fun w n ->
        if w > 0 then Buffer.add_string b ", ";
        Buffer.add_string b (string_of_int n))
      s.worker_evals;
    Buffer.add_char b ']'
  end;
  List.iter
    (fun (phase, dt) ->
      sep ();
      Buffer.add_string b (Printf.sprintf "%S: %.6f" ("seconds_" ^ phase) dt))
    (timers s);
  Buffer.add_char b '}';
  Buffer.contents b
