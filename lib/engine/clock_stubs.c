/* Monotonic wall-clock for the engine's phase timers.  CLOCK_MONOTONIC
   is immune to NTP step adjustments, so accumulated phase durations can
   never go backwards (Unix.gettimeofday, the previous source, can). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

/* Native entry: unboxed double return, so timing a hot phase does not
   allocate (the OCaml side declares it [@unboxed] [@@noalloc]). */
double te_monotonic_seconds_unboxed(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double) ts.tv_sec + (double) ts.tv_nsec * 1e-9;
}

/* Bytecode entry: boxes the result. */
CAMLprim value te_monotonic_seconds(value unit)
{
  return caml_copy_double(te_monotonic_seconds_unboxed(unit));
}
