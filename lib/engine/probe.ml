(* Span hooks the evaluator fires on its hot paths.  The engine sits
   below the observability layer, so the tracer is injected as this
   closure record; [null] keeps the disabled path to one field load and
   a branch (no closure application, no allocation). *)

type t = {
  enabled : bool;
  start : string -> int;
  finish : int -> unit;
}

let null = { enabled = false; start = (fun _ -> -1); finish = ignore }
