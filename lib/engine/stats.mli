(** Instrumentation for the shared evaluation engine.

    A [Stats.t] is a passive bag of counters and wall-clock timers that
    an {!Evaluator} (and the heuristics driving it) increments as it
    works.  One instance can be threaded through a whole optimization
    run to account for every shortest-path rebuild and cache hit it
    performed; [merge] folds per-stage instances into a run total. *)

type t = {
  mutable evaluations : int;
      (** candidate weight settings evaluated (mlu/phi queries) *)
  mutable full_spf : int;
      (** single-destination shortest-path DAGs built from scratch *)
  mutable incr_spf : int;
      (** DAGs repaired through the restricted Dijkstra *)
  mutable spf_nodes_touched : int;
      (** nodes re-settled by incremental repairs *)
  mutable dag_hits : int;  (** destination DAG served from cache *)
  mutable dag_misses : int;  (** destination DAG had to be (re)built *)
  mutable unit_hits : int;  (** memoized unit-flow vector reused *)
  mutable unit_misses : int;  (** unit-flow vector recomputed *)
  mutable unit_carried : int;
      (** unit-flow vector carried across a repair untouched: the taint
          pass proved the source's flow cone saw no distance or DAG-row
          change, so the cached entries are bit-identical *)
  mutable weight_updates : int;  (** single-weight [set_weight] calls *)
  mutable dirty_dests : int;
      (** destinations invalidated by weight updates *)
  mutable clean_dests : int;
      (** built destinations proven untouched by a weight update *)
  mutable commits : int;
  mutable undos : int;
  mutable scenarios : int;
      (** robustness scenarios evaluated ({!record_scenario}) *)
  mutable edges_disabled : int;
      (** links failed through {!Evaluator.disable_edge} *)
  mutable par_regions : int;
      (** parallel fan-outs (one per {!record_parallel} call) *)
  mutable par_tasks : int;  (** tasks dispatched across all fan-outs *)
  mutable par_jobs : int;  (** largest worker count used by any fan-out *)
  mutable par_wall : float;
      (** wall-clock seconds spent inside parallel fan-outs *)
  mutable par_busy : float;
      (** per-worker busy seconds summed over all fan-outs *)
  mutable worker_evals : int array;
      (** candidate evaluations per worker slot; grown on demand by
          {!record_worker_evals} (scheduling-dependent attribution —
          instrumentation only, never part of a deterministic result) *)
  mutable candidates_pruned : int;
      (** waypoint candidates removed before the scan by a candidate
          preprocessing pass (pool restriction, per-commodity filters,
          or the exact residual-MLU scan skip) *)
  mutable candidates_kept : int;
      (** waypoint candidates actually handed to the scan by a pruning
          pass; [kept / (kept + pruned)] is the surviving fraction.
          Both stay 0 when pruning is off *)
  mutable clone_syncs : int;
      (** cached worker clones refreshed by {!Evaluator.sync_from} /
          {!Evaluator.sync_weights} — an incremental delta instead of a
          full copy; recorded on the clone and folded into the run total
          when its stats are merged *)
  mutable clone_copies : int;
      (** worker clones built by a full {!Evaluator.copy} (first use of
          a slot, topology change, or a weight diff past the sync
          cutoff); [syncs / (syncs + copies)] is the clone-amortization
          ratio *)
  mutable milp_nodes : int;  (** branch-and-bound nodes explored *)
  mutable lp_solves : int;  (** LP (relaxation) solves *)
  mutable lp_pivots : int;  (** total simplex iterations *)
  mutable lp_warm_solves : int;
      (** LP solves warm-started from a previous basis *)
  mutable lp_cycle_limits : int;
      (** LP solves abandoned on the typed [CycleLimit] outcome *)
  timer_tbl : (string, float) Hashtbl.t;
      (** accumulated monotonic-clock seconds per phase; use {!time} /
          {!add_time} / {!timers} rather than touching this directly *)
  hot : float array;
      (** flat accumulators for the engine's hot phases (see
          {!hot_spf_full} and friends); folded back under the usual
          phase names by {!timers} / {!pp} / {!to_json} *)
}

(** {1 Hot-phase timer slots}

    [Stats.time] closes over its thunk and the hashtable boxes every
    accumulated float, so the evaluator's allocation-free inner loops
    instead accumulate durations straight into [hot]:
    {[ let ht = Stats.hot_times s in
       ht.(Stats.hot_units) <- ht.(Stats.hot_units) +. dt ]}
    (a float-array store never boxes).  The slots surface in {!timers}
    under the same names the hashtable path would use. *)

val hot_spf_full : int
val hot_spf_incr : int
val hot_units : int
val hot_loads : int

val hot_times : t -> float array
(** The [hot] array itself (borrowed). *)

val create : unit -> t

val reset : t -> unit

val merge : into:t -> t -> unit
(** Adds every counter and timer of the second argument into [into]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time s phase f] runs [f] and adds its duration to the accumulator
    named [phase].  Durations come from {!Mono.now}, so they cannot go
    negative under NTP wall-clock adjustments. *)

(** {1 Parallel search instrumentation} *)

val record_parallel : t -> jobs:int -> tasks:int -> wall:float -> busy:float -> unit
(** Accounts one parallel fan-out: [jobs] workers processed [tasks]
    tasks, the caller waited [wall] seconds, and the workers' summed
    task time was [busy] seconds. *)

val record_worker_evals : t -> worker:int -> int -> unit
(** Adds candidate evaluations to worker slot [worker]'s counter. *)

val record_scenario : t -> unit
(** Counts one robustness scenario evaluated (the granularity
    [lib/scenario] sweeps budget by). *)

val record_pruning : t -> pruned:int -> kept:int -> unit
(** Accounts one pruned candidate-list construction: [pruned] candidates
    removed before the scan, [kept] handed to it.
    @raise Invalid_argument on a negative count. *)

(** {1 LP / MILP effort} *)

val record_milp :
  t ->
  nodes:int ->
  lp_solves:int ->
  lp_pivots:int ->
  warm_solves:int ->
  cycle_limits:int ->
  unit
(** Accounts one branch-and-bound run: nodes explored plus the LP effort
    its relaxations consumed (the caller forwards [Milp.effort]). *)

val record_lp_solve : t -> pivots:int -> unit
(** Accounts one standalone LP solve of [pivots] simplex iterations. *)

val parallel_efficiency : t -> float
(** [par_busy / (par_wall * par_jobs)]: 1.0 means every worker was busy
    for the whole wall-clock of every fan-out; [nan] before any
    {!record_parallel}. *)

val add_time : t -> string -> float -> unit

val timers : t -> (string * float) list
(** Accumulated seconds per phase, sorted by phase name. *)

val full_rebuild_fraction : t -> float
(** [full_spf / (full_spf + incr_spf)]; [nan] before any SPF work. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object with every counter and timer (no trailing
    newline); used by the bench harness's machine-readable output. *)
