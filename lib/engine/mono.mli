(** Monotonic time source for the engine's instrumentation. *)

val now : unit -> float
(** Seconds since an arbitrary fixed origin, from [CLOCK_MONOTONIC]:
    strictly unaffected by wall-clock (NTP) adjustments.  Only
    differences are meaningful. *)
