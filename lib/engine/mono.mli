(** Monotonic time source for the engine's instrumentation. *)

external now : unit -> (float[@unboxed])
  = "te_monotonic_seconds" "te_monotonic_seconds_unboxed"
[@@noalloc]
(** Seconds since an arbitrary fixed origin, from [CLOCK_MONOTONIC]:
    strictly unaffected by wall-clock (NTP) adjustments.  Only
    differences are meaningful.  Declared as an unboxed [@@noalloc]
    external in this interface on purpose: behind a plain [val] the
    cross-module call returns a boxed float, which is exactly the kind
    of hidden per-call allocation the engine's timer pairs must not
    pay. *)
